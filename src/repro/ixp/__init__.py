"""Network-processor substrate: the IXP2850 implementation model (Section VI).

* :class:`LogExpTable` — the 96 Kb fixed-point Log & Exp lookup table.
* :class:`FixedPointDisco` — Algorithm 1 implemented against the table.
* :class:`IxpSimulator` / :class:`IxpConfig` — the discrete-event
  MicroEngine/ring/SRAM model calibrated from the paper's own latencies.
* :func:`eighty_twenty_bursts` — the Section-VI traffic pattern.
* :func:`run_table5` — the Table V experiment.
"""

from repro.ixp.engine import IxpConfig, IxpResult, IxpSimulator
from repro.ixp.fixedpoint import FixedPointDisco, FixedPointUpdate
from repro.ixp.logexp import LogExpTable
from repro.ixp.isa import CostModel
from repro.ixp.validate import ModelComparison, cross_validate
from repro.ixp.ring import RingConfig, RingResult, simulate_offered_load
from repro.ixp.threads import ThreadedMeConfig, ThreadedMeResult, ThreadedMicroEngine
from repro.ixp.throughput import Table5Row, run_one, run_table5
from repro.ixp.workload import EIGHTY_TWENTY, Burst, eighty_twenty_bursts

__all__ = [
    "LogExpTable",
    "FixedPointDisco",
    "FixedPointUpdate",
    "IxpConfig",
    "IxpResult",
    "IxpSimulator",
    "Burst",
    "eighty_twenty_bursts",
    "EIGHTY_TWENTY",
    "Table5Row",
    "run_one",
    "run_table5",
    "RingConfig",
    "RingResult",
    "simulate_offered_load",
    "ThreadedMeConfig",
    "ThreadedMeResult",
    "ThreadedMicroEngine",
    "CostModel",
    "ModelComparison",
    "cross_validate",
]
