"""Public scheme registry: build any counting scheme from a name.

The CLI, the benchmarks, the parallel harness and the streaming
subsystem all need to construct schemes from configuration — a string
name plus a handful of keyword parameters — and, for anything that
crosses a process boundary, they need that recipe to be *picklable*.
This module is the one registry they share:

``make_scheme(name, **params)``
    Build a fresh scheme instance.  Unknown names and unknown
    parameters raise :class:`~repro.errors.ParameterError` listing the
    valid choices.

``scheme_factory(name, **params)``
    Return a :class:`SchemeFactory` — a frozen, picklable
    zero-argument callable that defers ``make_scheme``.  This is the
    shape :class:`repro.harness.parallel.ReplayJob` and
    :func:`repro.facade.stream` want: a closure cannot cross a process
    boundary, a registry name plus a parameter tuple can.

``scheme_names()`` / ``scheme_spec(name)``
    Introspection over the registered :class:`SchemeSpec` entries.

Builders share one keyword vocabulary (``bits``, ``mode``, ``seed``,
``max_length``) so callers can pass a uniform parameter set; each
scheme family adds its own extras (``b``, ``sram_bits``, ...).
Parameters a family does not use are accepted and ignored, exactly as
the historical ``cli.py:_make_scheme`` dispatcher behaved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ParameterError

__all__ = [
    "SchemeSpec",
    "SchemeFactory",
    "make_scheme",
    "scheme_factory",
    "scheme_names",
    "scheme_spec",
    "register_scheme",
]


@dataclass(frozen=True)
class SchemeSpec:
    """One registry entry: how to build a scheme family by name."""

    name: str
    summary: str
    builder: Callable[..., object]
    defaults: Mapping[str, object] = field(default_factory=dict)


_SCHEMES: Dict[str, SchemeSpec] = {}


def register_scheme(spec: SchemeSpec) -> SchemeSpec:
    """Add ``spec`` to the registry (duplicate names are an error)."""
    if spec.name in _SCHEMES:
        raise ParameterError(f"scheme {spec.name!r} is already registered")
    _SCHEMES[spec.name] = spec
    return spec


def scheme_names() -> Tuple[str, ...]:
    """Registered scheme names, sorted."""
    return tuple(sorted(_SCHEMES))


def scheme_spec(name: str) -> SchemeSpec:
    """Look up one :class:`SchemeSpec`; unknown names raise."""
    spec = _SCHEMES.get(name)
    if spec is None:
        raise ParameterError(
            f"unknown scheme {name!r}; choose from {', '.join(scheme_names())}"
        )
    return spec


def make_scheme(name: str, **params):
    """Build a fresh scheme instance for ``name``.

    ``params`` override the spec's defaults; unknown parameters raise
    :class:`~repro.errors.ParameterError` rather than ``TypeError`` so
    every rejection out of this module reads the same way.
    """
    spec = scheme_spec(name)
    merged = dict(spec.defaults)
    merged.update(params)
    try:
        return spec.builder(**merged)
    except TypeError as exc:
        raise ParameterError(f"bad parameters for scheme {name!r}: {exc}") from None


@dataclass(frozen=True)
class SchemeFactory:
    """Picklable zero-argument scheme factory (``name`` + frozen params).

    Calling the factory is ``make_scheme(name, **dict(params))``; both
    fields are plain data, so instances survive ``pickle`` across the
    persistent process pool and inside stream checkpoints.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __call__(self):
        return make_scheme(self.name, **dict(self.params))


def scheme_factory(name: str, **params) -> SchemeFactory:
    """Build a :class:`SchemeFactory`, validating name and params eagerly.

    The returned factory is exercised once so a bad parameter set fails
    here — at configuration time — not inside a worker process.
    """
    factory = SchemeFactory(name, tuple(sorted(params.items(), key=lambda kv: kv[0])))
    factory()
    return factory


# -- builders ------------------------------------------------------------------


def _sized_b(bits: int, max_length: Optional[float], slack: float) -> float:
    from repro.core.analysis import choose_b

    if max_length is None:
        raise ParameterError(
            "scheme needs either b= or max_length= to size its counters"
        )
    return choose_b(bits, max_length, slack=slack)


def _build_disco(
    bits: int = 10,
    mode: str = "volume",
    seed=None,
    max_length: Optional[float] = None,
    b: Optional[float] = None,
    slack: float = 1.5,
    capacity_bits: Optional[int] = None,
):
    from repro.core.disco import DiscoSketch

    if b is None:
        b = _sized_b(bits, max_length, slack)
        if capacity_bits is None:
            capacity_bits = bits
    return DiscoSketch(b=b, mode=mode, rng=seed, capacity_bits=capacity_bits)


def _build_sac(
    bits: int = 10,
    mode: str = "volume",
    seed=None,
    max_length: Optional[float] = None,
    mode_bits: int = 3,
    initial_r: int = 1,
):
    from repro.counters.sac import SmallActiveCounters

    return SmallActiveCounters(
        total_bits=bits, mode_bits=mode_bits, mode=mode, rng=seed, initial_r=initial_r
    )


def _build_exact(
    bits: int = 10,
    mode: str = "volume",
    seed=None,
    max_length: Optional[float] = None,
):
    from repro.counters.exact import ExactCounters

    return ExactCounters(mode=mode)


def _build_sd(
    bits: int = 10,
    mode: str = "volume",
    seed=None,
    max_length: Optional[float] = None,
    sram_bits: int = 16,
    dram_access_ratio: int = 12,
):
    from repro.counters.sd import SdCounters

    return SdCounters(
        sram_bits=sram_bits, dram_access_ratio=dram_access_ratio, mode=mode, rng=seed
    )


def _build_anls1(
    bits: int = 10,
    mode: str = "volume",
    seed=None,
    max_length: Optional[float] = None,
    b: Optional[float] = None,
    slack: float = 1.5,
):
    from repro.counters.anls import AnlsBytesNaive

    if b is None:
        b = _sized_b(bits, max_length, slack)
    # ANLS-I is a byte-counting extension: mode is pinned to "volume"
    # regardless of the shared vocabulary, as the CLI always did.
    return AnlsBytesNaive(b=b, mode="volume", rng=seed)


def _build_anls2(
    bits: int = 10,
    mode: str = "volume",
    seed=None,
    max_length: Optional[float] = None,
    b: Optional[float] = None,
    slack: float = 1.5,
):
    from repro.counters.anls import AnlsPerUnit

    if b is None:
        b = _sized_b(bits, max_length, slack)
    return AnlsPerUnit(b=b, mode="volume", rng=seed)


def _build_ice(
    bits: int = 10,
    mode: str = "volume",
    seed=None,
    max_length: Optional[float] = None,
    bucket_flows: int = 16,
):
    from repro.counters.ice import IceBuckets

    return IceBuckets(total_bits=bits, bucket_flows=bucket_flows, mode=mode, rng=seed)


def _build_aee(
    bits: int = 16,
    mode: str = "volume",
    seed=None,
    max_length: Optional[float] = None,
    p: Optional[float] = None,
    slack: float = 1.5,
):
    from repro.counters.aee import AeeCounters

    if p is None:
        # Size p so the counter's word covers the largest expected flow
        # with the same slack convention choose_b uses: the counter holds
        # about p * total traffic of a flow, so p = (2^bits - 1) /
        # (slack * max_length) keeps saturation an outlier event.
        if max_length is None:
            raise ParameterError(
                "scheme 'aee' needs either p= or max_length= to size its "
                "sampling probability"
            )
        p = min(1.0, ((1 << bits) - 1) / (slack * float(max_length)))
    return AeeCounters(p=p, total_bits=bits, mode=mode, rng=seed)


register_scheme(
    SchemeSpec("disco", "DISCO sketch (geometric Algorithm 1)", _build_disco)
)
register_scheme(
    SchemeSpec("sac", "Small Active Counters (Stanojevic)", _build_sac)
)
register_scheme(SchemeSpec("exact", "exact per-flow totals (baseline)", _build_exact))
register_scheme(
    SchemeSpec("sd", "SD hybrid SRAM/DRAM counter array (LCF)", _build_sd)
)
register_scheme(
    SchemeSpec("anls1", "ANLS-I naive byte-counting extension", _build_anls1)
)
register_scheme(
    SchemeSpec("anls2", "ANLS-II per-unit byte-counting extension", _build_anls2)
)
register_scheme(
    SchemeSpec("ice", "ICE Buckets: per-bucket independent scale", _build_ice)
)
register_scheme(
    SchemeSpec("aee", "AEE additive-error counters (constant-p)", _build_aee)
)
