"""Sampled-NetFlow with flow-cache semantics — the operational baseline.

The sampling schemes in :mod:`repro.counters.sampling` model only the
estimator.  A deployed NetFlow also has a *flow cache*: a bounded table of
active flow entries with inactivity and active-age timeouts, exporting and
evicting entries as they expire.  Those mechanics — not the estimator —
are where deployed NetFlow loses information on long measurement
intervals, and they are why the paper's SRAM-resident always-on counters
are attractive.

This module implements that baseline faithfully enough to compare:
packet-sampled updates (rate ``1/N``), a bounded cache with LRU-of-expired
eviction, timer-driven expiry, and an export stream whose per-flow records
can be re-aggregated (as a collector would) for accuracy evaluation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List

from repro.counters.base import CountingScheme
from repro.core.disco import counter_bits
from repro.errors import ParameterError

__all__ = ["NetflowRecordOut", "SampledNetflow"]


@dataclass(frozen=True)
class NetflowRecordOut:
    """One exported (expired) cache entry."""

    flow: Hashable
    sampled_total: int
    first_packet_time: float
    last_packet_time: float
    reason: str  # "inactive", "active-age", "evicted", "final"


class SampledNetflow(CountingScheme):
    """Packet-sampled NetFlow with a bounded, timer-expired flow cache.

    Parameters
    ----------
    sampling_rate:
        ``p = 1/N``; each packet updates the cache with probability ``p``.
    cache_entries:
        Maximum resident flow entries.
    inactive_timeout, active_timeout:
        Seconds of silence (resp. total age) after which an entry is
        exported.  Timeouts are checked lazily on each observation using
        the packet timestamps supplied via :meth:`observe_at`.
    """

    name = "netflow"

    def __init__(
        self,
        sampling_rate: float,
        cache_entries: int = 4096,
        inactive_timeout: float = 15.0,
        active_timeout: float = 1800.0,
        mode: str = "volume",
        rng=None,
    ) -> None:
        super().__init__(mode=mode, rng=rng)
        if not (0.0 < sampling_rate <= 1.0):
            raise ParameterError(f"sampling_rate must be in (0, 1], got {sampling_rate!r}")
        if cache_entries < 1:
            raise ParameterError(f"cache_entries must be >= 1, got {cache_entries!r}")
        if inactive_timeout <= 0 or active_timeout <= 0:
            raise ParameterError("timeouts must be > 0")
        self.sampling_rate = sampling_rate
        self.cache_entries = cache_entries
        self.inactive_timeout = inactive_timeout
        self.active_timeout = active_timeout
        # _state maps flow -> [sampled_total, first_time, last_time]
        self._state: "OrderedDict[Hashable, List[float]]" = OrderedDict()
        self.exports: List[NetflowRecordOut] = []
        self._exported_totals: Dict[Hashable, int] = {}
        self._now = 0.0
        self.cache_evictions = 0

    # -- cache mechanics ----------------------------------------------------

    def _export(self, flow: Hashable, reason: str) -> None:
        total, first, last = self._state.pop(flow)
        self.exports.append(NetflowRecordOut(
            flow=flow, sampled_total=int(total),
            first_packet_time=first, last_packet_time=last, reason=reason,
        ))
        self._exported_totals[flow] = (
            self._exported_totals.get(flow, 0) + int(total)
        )

    def _expire(self, now: float) -> None:
        expired = []
        for flow, (total, first, last) in self._state.items():
            if now - last >= self.inactive_timeout:
                expired.append((flow, "inactive"))
            elif now - first >= self.active_timeout:
                expired.append((flow, "active-age"))
        for flow, reason in expired:
            self._export(flow, reason)

    def observe_at(self, flow: Hashable, length: float, timestamp: float) -> None:
        """Timestamped observation (drives the expiry timers)."""
        if timestamp < self._now:
            raise ParameterError("timestamps must be non-decreasing")
        self._now = timestamp
        self._expire(timestamp)
        self.packets_observed += 1
        if self._rng.random() >= self.sampling_rate:
            return
        amount = 1.0 if self.mode == "size" else float(length)
        entry = self._state.get(flow)
        if entry is None:
            if len(self._state) >= self.cache_entries:
                # Evict the least recently updated entry (export it).
                victim = min(self._state, key=lambda f: self._state[f][2])
                self._export(victim, "evicted")
                self.cache_evictions += 1
            self._state[flow] = [amount, timestamp, timestamp]
        else:
            entry[0] += amount
            entry[2] = timestamp

    def _update(self, flow: Hashable, amount: float) -> None:
        # CountingScheme hook: untimed observation advances time by one
        # microsecond per packet (keeps plain replay() working).
        raise NotImplementedError  # pragma: no cover - observe() overridden

    def observe(self, flow: Hashable, length: float = 1.0) -> None:
        self.observe_at(flow, length, self._now + 1e-6)

    def flush(self) -> None:
        """End of interval: export everything still cached."""
        for flow in list(self._state):
            self._export(flow, "final")

    # -- estimation -----------------------------------------------------------

    def estimate(self, flow: Hashable) -> float:
        """Collector-side estimate: re-aggregated exports plus cache."""
        sampled = self._exported_totals.get(flow, 0)
        entry = self._state.get(flow)
        if entry is not None:
            sampled += int(entry[0])
        return sampled / self.sampling_rate

    def flows(self):
        seen = set(self._state) | set(self._exported_totals)
        return iter(seen)

    def __len__(self) -> int:
        return len(set(self._state) | set(self._exported_totals))

    def max_counter_bits(self) -> int:
        values = [int(v[0]) for v in self._state.values()]
        values += list(self._exported_totals.values())
        return counter_bits(max(values, default=0))

    def reset(self) -> None:
        super().reset()
        self._state = OrderedDict()
        self.exports = []
        self._exported_totals = {}
        self._now = 0.0
        self.cache_evictions = 0
