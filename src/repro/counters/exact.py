"""Exact full-size counters — the ground truth and the SD reference line.

An exact counter stores the true flow total.  It has zero estimation error
and a counter value that grows linearly with the flow length (slope one),
which is the "full size counter (like SD)" line in Figures 1 and 9.
"""

from __future__ import annotations

from typing import Hashable

from repro.counters.base import CountingScheme
from repro.core.disco import counter_bits

__all__ = ["ExactCounters"]


class ExactCounters(CountingScheme):
    """Dictionary-backed exact per-flow totals."""

    name = "exact"

    def _update(self, flow: Hashable, amount: float) -> None:
        self._state[flow] = self._state.get(flow, 0) + int(amount)

    def estimate(self, flow: Hashable) -> float:
        return float(self._state.get(flow, 0))

    def true_total(self, flow: Hashable) -> int:
        """Alias for :meth:`estimate` returning an int; reads as intent."""
        return int(self._state.get(flow, 0))

    def max_counter_bits(self) -> int:
        largest = max(self._state.values(), default=0)
        return counter_bits(int(largest))

    def kernel(self):
        from repro.core.kernels import exact_kernel_spec

        return exact_kernel_spec(self)
