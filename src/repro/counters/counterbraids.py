"""Counter Braids (Lu et al., SIGMETRICS 2008) — braided counters with
offline message-passing decoding.

The second "complementary" architecture the DISCO paper cites (as CB, [14]).
Flows are hashed to ``k`` counters in a shared layer-1 array; each counter
accumulates the *sum* of its flows.  Layer-1 counters are narrow; when one
overflows, the carry is braided into a smaller layer-2 array (each layer-1
counter hashes to ``k2`` layer-2 counters).  Per-flow values are not
readable online — they are recovered after the measurement interval by an
iterative message-passing decoder over the bipartite flow/counter graph.

This gives the opposite trade-off from DISCO: CB is (whp) *exact* but
offline-only, while DISCO is approximate but readable per packet.  The
combination benchmark shows DISCO compressing CB's layer-1 load.

Decoder
-------
The standard CB decoder.  With counter values ``c_a`` and messages
``mu_{f->a}`` (flow to counter) and ``nu_{a->f}`` (counter to flow):

    nu_{a->f} = max(0, c_a - sum_{f' in a, f' != f} mu_{f'->a})
    mu_{f->a} = min_{a' in f, a' != a} nu_{a'->f}      (clamped at >= floor)

iterated from ``mu = 0``; the per-flow estimate alternates between lower
and upper bounds and the decoder stops when consecutive iterations agree
(or after ``max_iterations``, reporting non-convergence).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.counters.base import CountingScheme
from repro.errors import DecodingError, ParameterError

__all__ = ["CounterBraids", "decode_layer", "DecodeResult"]


def _hash_indices(key: Hashable, k: int, size: int, salt: str) -> Tuple[int, ...]:
    """``k`` distinct array indices for ``key`` via salted SHA-256 draws."""
    indices: List[int] = []
    attempt = 0
    while len(indices) < k:
        digest = hashlib.sha256(f"{salt}:{attempt}:{key!r}".encode()).digest()
        index = int.from_bytes(digest[:8], "big") % size
        if index not in indices:
            indices.append(index)
        attempt += 1
        if attempt > 64 * k:  # pragma: no cover - only tiny arrays
            raise ParameterError(
                f"cannot draw {k} distinct indices from an array of {size}"
            )
    return tuple(indices)


@dataclass
class DecodeResult:
    """Outcome of a message-passing decode.

    Attributes
    ----------
    estimates:
        Per-flow decoded values, in the order the flows were supplied.
    iterations:
        Iterations executed.
    converged:
        Whether upper and lower bounds met for every flow.
    """

    estimates: List[float]
    iterations: int
    converged: bool
    max_residual: float = 0.0


def decode_layer(
    counter_values: Sequence[float],
    flow_edges: Sequence[Sequence[int]],
    max_iterations: int = 200,
    floor: float = 0.0,
) -> DecodeResult:
    """Message-passing decode of one braid layer.

    Parameters
    ----------
    counter_values:
        The counter array after the measurement interval.
    flow_edges:
        For each flow, the indices of the counters it hashes to.
    max_iterations:
        Bound on decoder iterations.
    floor:
        Known lower bound on any flow's value (0 for "flows may be absent",
        1 when every listed flow was seen at least once).
    """
    num_flows = len(flow_edges)
    if num_flows == 0:
        return DecodeResult(estimates=[], iterations=0, converged=True)
    stable = False
    counters_to_flows: Dict[int, List[int]] = {}
    for f, edges in enumerate(flow_edges):
        if not edges:
            raise ParameterError(f"flow {f} has no counter edges")
        for a in edges:
            counters_to_flows.setdefault(a, []).append(f)

    # mu[f][j]: message from flow f along its j-th edge; start at floor.
    mu = [[float(floor)] * len(edges) for edges in flow_edges]
    previous: Optional[List[float]] = None
    estimates = [float(floor)] * num_flows
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        # Counter sums of incoming flow messages (for fast exclusion).
        incoming: Dict[int, float] = {a: 0.0 for a in counters_to_flows}
        for f, edges in enumerate(flow_edges):
            for j, a in enumerate(edges):
                incoming[a] += mu[f][j]
        # nu_{a->f} and new flow messages.
        new_mu = [[0.0] * len(edges) for edges in flow_edges]
        for f, edges in enumerate(flow_edges):
            nu = [
                max(0.0, counter_values[a] - (incoming[a] - mu[f][j]))
                for j, a in enumerate(edges)
            ]
            for j in range(len(edges)):
                others = [nu[j2] for j2 in range(len(edges)) if j2 != j]
                value = min(others) if others else nu[j]
                new_mu[f][j] = max(float(floor), value)
            estimates[f] = max(float(floor), min(nu))
        mu = new_mu
        if previous is not None and all(
            abs(a - b) < 1e-9 for a, b in zip(previous, estimates)
        ):
            stable = True
            break
        previous = list(estimates)
    # A stable fixed point can still be a *wrong* decode on an overloaded
    # graph, so convergence additionally requires the estimates to explain
    # every counter exactly (each counter's value equals the sum of its
    # flows' estimates).
    sums: Dict[int, float] = {a: 0.0 for a in counters_to_flows}
    for f, edges in enumerate(flow_edges):
        est = estimates[f]
        for a in set(edges):
            sums[a] += est
    max_residual = max(
        (abs(counter_values[a] - s) for a, s in sums.items()), default=0.0
    )
    scale = max(1.0, max((abs(counter_values[a]) for a in sums), default=1.0))
    converged = stable and max_residual <= 1e-6 * scale
    return DecodeResult(
        estimates=estimates,
        iterations=iterations,
        converged=converged,
        max_residual=max_residual,
    )


class CounterBraids(CountingScheme):
    """Two-layer Counter Braids with message-passing decoding.

    Parameters
    ----------
    layer1_size, layer1_bits:
        Layer-1 array length and counter width.  Layer-1 counters wrap on
        overflow; each overflow sends a carry into layer 2.
    layer2_size, layer2_bits:
        Layer-2 array; sized so carries essentially never overflow.
    hashes, layer2_hashes:
        Edges per flow into layer 1 (``k``, default 3) and per layer-1
        counter into layer 2 (default 2, following the CB paper).
    """

    name = "counter-braids"

    def __init__(
        self,
        layer1_size: int,
        layer1_bits: int = 8,
        layer2_size: Optional[int] = None,
        layer2_bits: int = 56,
        hashes: int = 3,
        layer2_hashes: int = 2,
        mode: str = "volume",
        rng=None,
        salt: str = "cb",
    ) -> None:
        super().__init__(mode=mode, rng=rng)
        if layer1_size < hashes:
            raise ParameterError("layer1_size must be >= number of hashes")
        if layer1_bits < 1 or layer2_bits < 1:
            raise ParameterError("counter widths must be >= 1")
        if hashes < 1 or layer2_hashes < 1:
            raise ParameterError("hash counts must be >= 1")
        self.layer1_size = layer1_size
        self.layer1_bits = layer1_bits
        self._layer1_wrap = 1 << layer1_bits
        self.layer2_size = layer2_size if layer2_size is not None else max(
            layer2_hashes, layer1_size // 8
        )
        self.layer2_bits = layer2_bits
        self.hashes = hashes
        self.layer2_hashes = layer2_hashes
        self.salt = salt
        self.layer1 = [0] * self.layer1_size
        self.layer2 = [0] * self.layer2_size
        self._flow_edges: Dict[Hashable, Tuple[int, ...]] = {}
        self._layer2_edges: List[Tuple[int, ...]] = [
            _hash_indices(i, layer2_hashes, self.layer2_size, salt + ":l2")
            for i in range(self.layer1_size)
        ]
        self.layer1_overflows = 0
        # Status bits: which layer-1 counters ever overflowed into layer 2.
        # (Real CB keeps one bit per counter; decode only consults these.)
        self._overflowed: set = set()
        self._decoded: Optional[Dict[Hashable, float]] = None

    def _edges_for(self, flow: Hashable) -> Tuple[int, ...]:
        edges = self._flow_edges.get(flow)
        if edges is None:
            edges = _hash_indices(flow, self.hashes, self.layer1_size, self.salt)
            self._flow_edges[flow] = edges
        return edges

    def _update(self, flow: Hashable, amount: float) -> None:
        self._state.setdefault(flow, True)
        self._decoded = None
        for a in self._edges_for(flow):
            value = self.layer1[a] + int(amount)
            if value >= self._layer1_wrap:
                carry, value = divmod(value, self._layer1_wrap)
                self.layer1_overflows += carry
                self._overflowed.add(a)
                for b in self._layer2_edges[a]:
                    self.layer2[b] += carry
            self.layer1[a] = value

    # -- decoding ----------------------------------------------------------

    def decode(self, max_iterations: int = 200, strict: bool = False) -> Dict[Hashable, float]:
        """Run the two-stage decode and return per-flow estimates.

        Stage 1 recovers each layer-1 counter's overflow count from layer 2;
        stage 2 reconstructs full layer-1 values and decodes flows from them.
        With ``strict`` the decoder raises
        :class:`~repro.errors.DecodingError` on non-convergence instead of
        returning best-effort estimates.
        """
        flows = list(self._state)
        if not flows:
            self._decoded = {}
            return {}
        # Stage 1: layer-1 counters whose status bit is set are the "flows"
        # of layer 2 (their true value is their overflow count); counters
        # that never overflowed are known to carry zero.
        overflow_counts = [0] * self.layer1_size
        if self._overflowed:
            overflowed = sorted(self._overflowed)
            overflow_result = decode_layer(
                self.layer2,
                [self._layer2_edges[i] for i in overflowed],
                max_iterations=max_iterations,
                floor=1.0,
            )
            if strict and not overflow_result.converged:
                raise DecodingError("layer-2 decode did not converge")
            for i, estimate in zip(overflowed, overflow_result.estimates):
                overflow_counts[i] = round(estimate)
        full_layer1 = [
            self.layer1[i] + overflow_counts[i] * self._layer1_wrap
            for i in range(self.layer1_size)
        ]
        # Stage 2: decode flows from reconstructed layer-1 values.
        edge_list = [self._flow_edges[f] for f in flows]
        flow_result = decode_layer(
            full_layer1,
            edge_list,
            max_iterations=max_iterations,
            floor=1.0,
        )
        if strict and not flow_result.converged:
            raise DecodingError("layer-1 decode did not converge")
        self._decoded = {f: flow_result.estimates[i] for i, f in enumerate(flows)}
        return dict(self._decoded)

    def estimate(self, flow: Hashable) -> float:
        """Decoded estimate (runs/reuses the offline decode — CB has no
        online read, which is exactly the contrast with DISCO)."""
        if flow not in self._state:
            return 0.0
        if self._decoded is None:
            self.decode()
        assert self._decoded is not None
        return self._decoded.get(flow, 0.0)

    def max_counter_bits(self) -> int:
        return max(self.layer1_bits, self.layer2_bits)

    def memory_bits(self) -> int:
        """Total braid memory (both layers)."""
        return self.layer1_size * self.layer1_bits + self.layer2_size * self.layer2_bits
