"""ANLS and its two byte-counting extensions (ANLS-I, ANLS-II).

Adaptive Non-Linear Sampling (Hu et al., INFOCOM 2008) counts *packets*:
with counter value ``c``, an arriving packet is sampled with probability
``p(c) = 1 / (f(c+1) - f(c))`` and, when sampled, the counter is increased
by one.  With the paper's ``f(c) = (b^c - 1)/(b - 1)`` this is
``p(c) = b^{-c}``, and ``f(c)`` is the unbiased size estimator.

Section IV-C of the DISCO paper shows DISCO with ``l = 1`` is *equivalent*
to ANLS; a statistical test in this repository asserts that.

For flow-volume counting the paper examines two straw-man extensions:

* **ANLS-I** (E1): when a packet is sampled, add its length ``l`` instead
  of 1.  The estimator stays ``f(c)``.  Because a single sampling decision
  now moves the counter by wildly different amounts depending on which
  packet happened to be sampled, the relative error explodes whenever the
  intra-flow packet-length variation is non-trivial (Table III: average
  relative errors of 6-18, i.e. 600-1800%).
* **ANLS-II** (E2): view a packet of ``l`` bytes as ``l`` unit packets and
  run the ANLS trial ``l`` times.  Accuracy equals DISCO's, but per-packet
  cost is O(l) — Table IV measures the resulting execution-time ratio.
"""

from __future__ import annotations

from typing import Hashable

from repro.counters.base import CountingScheme
from repro.core.disco import counter_bits
from repro.core.functions import CountingFunction, GeometricCountingFunction
from repro.errors import ParameterError

__all__ = ["Anls", "AnlsBytesNaive", "AnlsPerUnit"]


class _AnlsBase(CountingScheme):
    """Shared machinery: the state is one integer counter per flow."""

    def __init__(self, b: float, mode: str, rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        self.function: CountingFunction = GeometricCountingFunction(b)
        self.b = b

    def _sampling_probability(self, c: int) -> float:
        """``p(c) = 1 / (f(c+1) - f(c)) = b^{-c}``."""
        return 1.0 / self.function.gap(c)

    def estimate(self, flow: Hashable) -> float:
        return self.function.value(self._state.get(flow, 0))

    def counter_value(self, flow: Hashable) -> int:
        return self._state.get(flow, 0)

    def max_counter_bits(self) -> int:
        largest = max(self._state.values(), default=0)
        return counter_bits(int(largest))

    def kernel(self):
        from repro.core.kernels import anls_kernel_spec

        return anls_kernel_spec(self)


class Anls(_AnlsBase):
    """Original ANLS: flow-*size* counting only.

    Constructing it in ``"volume"`` mode is rejected — that is exactly the
    misuse the DISCO paper warns against; use :class:`AnlsBytesNaive` or
    :class:`AnlsPerUnit` to reproduce the straw men, or DISCO to do it
    properly.
    """

    name = "anls"

    def __init__(self, b: float, mode: str = "size", rng=None) -> None:
        if mode != "size":
            raise ParameterError(
                "ANLS counts packets only; for bytes use AnlsBytesNaive/AnlsPerUnit or DISCO"
            )
        super().__init__(b, mode=mode, rng=rng)

    def _update(self, flow: Hashable, amount: float) -> None:
        c = self._state.setdefault(flow, 0)
        if self._rng.random() < self._sampling_probability(c):
            self._state[flow] = c + 1


class AnlsBytesNaive(_AnlsBase):
    """ANLS-I: sample with ``p(c)``, add the packet *length* when sampled.

    Kept deliberately faithful to the straw man: the estimator is still
    ``f(c)`` even though the counter dynamics no longer justify it, which
    is why its error is enormous on traffic with varying packet lengths.
    """

    name = "anls-1"

    def __init__(self, b: float, mode: str = "volume", rng=None) -> None:
        if mode != "volume":
            raise ParameterError("ANLS-I is a byte-counting extension; mode must be 'volume'")
        super().__init__(b, mode=mode, rng=rng)

    def _update(self, flow: Hashable, amount: float) -> None:
        c = self._state.setdefault(flow, 0)
        if self._rng.random() < self._sampling_probability(c):
            self._state[flow] = c + int(amount)


class AnlsPerUnit(_AnlsBase):
    """ANLS-II: run the ANLS trial once per *byte* of the packet.

    The per-byte loop is intentionally not shortcut: its O(l) per-packet
    cost is the quantity Table IV reports (execution-time ratio vs DISCO).
    Accuracy-oriented tests may use DISCO itself as the statistically
    equivalent fast reference.
    """

    name = "anls-2"

    def __init__(self, b: float, mode: str = "volume", rng=None) -> None:
        if mode != "volume":
            raise ParameterError("ANLS-II is a byte-counting extension; mode must be 'volume'")
        super().__init__(b, mode=mode, rng=rng)

    def _update(self, flow: Hashable, amount: float) -> None:
        c = self._state.setdefault(flow, 0)
        rand = self._rng.random
        gap = self.function.gap
        for _ in range(int(amount)):
            if rand() < 1.0 / gap(c):
                c += 1
        self._state[flow] = c
