"""Hardware-faithful DISCO deployment: fixed flow table, fixed-width counters.

The accuracy experiments follow the paper in assuming one counter per flow;
a line card, however, has a fixed SRAM array indexed by a hash of the flow
key.  :class:`HardwareDiscoSketch` composes the DISCO update rule with the
:class:`~repro.flows.flowtable.FlowTable` substrate so deployments can be
sized realistically:

* ``slots`` counters of ``counter_bits`` each, plus a key tag per slot;
* bounded linear probing — flows that cannot be placed are *unaccounted*
  (counted, and charged as estimate 0 by the error metrics, exactly what a
  real device would suffer);
* saturating counters (saturation events counted).

``memory_bits()`` reports the full SRAM budget, which is the number to
compare against the paper's "implementable in SRAM" claim.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterator, Union

from repro.core.functions import CountingFunction, GeometricCountingFunction
from repro.core.update import compute_update
from repro.errors import ParameterError
from repro.flows.flowtable import FlowTable

__all__ = ["HardwareDiscoSketch"]


class HardwareDiscoSketch:
    """DISCO counters in a fixed-size open-addressing SRAM table.

    Parameters
    ----------
    b:
        DISCO growth base.
    slots:
        Counter array length (rounded up to a power of two).
    counter_bits:
        Width of each counter; values saturate at ``2^bits - 1``.
    tag_bits:
        Bits of flow-key tag stored per slot (for key disambiguation);
        only affects the memory accounting.
    max_probes:
        Probe bound of the flow table.
    mode:
        ``"volume"`` or ``"size"``.
    """

    name = "disco-hw"

    def __init__(
        self,
        b: float,
        slots: int,
        counter_bits: int = 10,
        tag_bits: int = 16,
        max_probes: int = 8,
        mode: str = "volume",
        rng: Union[None, int, random.Random] = None,
    ) -> None:
        if mode not in ("volume", "size"):
            raise ParameterError(f"mode must be 'volume' or 'size', got {mode!r}")
        if counter_bits < 1:
            raise ParameterError(f"counter_bits must be >= 1, got {counter_bits!r}")
        if tag_bits < 0:
            raise ParameterError(f"tag_bits must be >= 0, got {tag_bits!r}")
        self.function: CountingFunction = GeometricCountingFunction(b)
        self.mode = mode
        self.counter_bits = counter_bits
        self.tag_bits = tag_bits
        self._max_value = (1 << counter_bits) - 1
        self._table: FlowTable = FlowTable(slots, max_probes=max_probes)
        self._rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        self.unaccounted_packets = 0
        self.saturation_events = 0
        self.packets_observed = 0

    # -- ingestion ----------------------------------------------------------

    def observe(self, flow: Hashable, length: float = 1.0) -> bool:
        """Record one packet; returns False when the flow has no slot."""
        if not (length > 0):
            raise ParameterError(f"packet length must be > 0, got {length!r}")
        self.packets_observed += 1
        amount = 1.0 if self.mode == "size" else float(length)
        current, _ = self._table.get_or_insert(flow, 0)
        if current is None:
            self.unaccounted_packets += 1
            return False
        decision = compute_update(self.function, current, amount)
        advance = decision.delta
        if self._rng.random() < decision.probability:
            advance += 1
        new_value = current + advance
        if new_value > self._max_value:
            self.saturation_events += 1
            new_value = self._max_value
        self._table.put(flow, new_value)
        return True

    def observe_many(self, packets) -> None:
        for flow, length in packets:
            self.observe(flow, length)

    # -- read-out -------------------------------------------------------------

    def counter_value(self, flow: Hashable) -> int:
        value = self._table.get(flow)
        return 0 if value is None else int(value)

    def estimate(self, flow: Hashable) -> float:
        return self.function.value(self.counter_value(flow))

    def flows(self) -> Iterator[Hashable]:
        return self._table.keys()

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, flow: Hashable) -> bool:
        return flow in self._table

    def max_counter_bits(self) -> int:
        return self.counter_bits

    # -- provisioning metrics ---------------------------------------------------

    @property
    def load_factor(self) -> float:
        return self._table.load_factor

    @property
    def insert_failures(self) -> int:
        return self._table.stats.insert_failures

    @property
    def mean_probe_length(self) -> float:
        return self._table.stats.mean_probe_length

    def memory_bits(self) -> int:
        """Total SRAM: every slot carries a tag and a counter."""
        return self._table.capacity * (self.counter_bits + self.tag_bits)

    def reset(self) -> None:
        self._table.clear()
        self.unaccounted_packets = 0
        self.saturation_events = 0
        self.packets_observed = 0

    def __repr__(self) -> str:
        return (
            f"HardwareDiscoSketch(slots={self._table.capacity}, "
            f"counter_bits={self.counter_bits}, load={self.load_factor:.2f})"
        )
