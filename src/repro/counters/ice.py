"""ICE Buckets — independent counter estimation buckets (arXiv:1606.01364).

ICE Buckets is the accuracy counterpoint to global-scale sampled
counters: where SAC shares one scaling parameter ``r`` across the whole
array (so one elephant coarsens *every* counter) and DISCO bakes one
counting function into the array, ICE partitions the counters into
fixed-size **buckets** and gives each bucket its own independent
estimation scale.  A bucket full of mice keeps counting at unit
precision no matter how large the flows in other buckets grow.

Each bucket holds ``bucket_flows`` counters of ``total_bits`` bits plus
one shared scale level ``s`` (counting unit ``2^s``).  An update of
``amount`` adds ``amount / 2^s`` with unbiased probabilistic rounding
(floor plus a Bernoulli on the fraction); the estimator reads
``c * 2^s``.  When a counter would overflow its ``total_bits``, the
*bucket* up-scales: ``s`` grows by one and every counter in the bucket
is halved with probabilistic rounding — a local O(bucket) event
(counted in ``bucket_upscales``), never the global O(array) sweep the
DISCO paper criticises in SAC.

Flows are assigned to buckets by arrival order (``flow_index //
bucket_flows``), the deterministic analogue of the paper's hash
partition — it keeps scalar runs, columnar kernel runs and resumed
stream runs agreeing on the partition without carrying a hash seed.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List

from repro.counters.base import CountingScheme
from repro.errors import ParameterError

__all__ = ["IceBuckets"]


class IceBuckets(CountingScheme):
    """Per-flow counters in fixed-size buckets with independent scales.

    Parameters
    ----------
    total_bits:
        Width of each counter; a bucket up-scales when a counter would
        reach ``2^total_bits``.
    bucket_flows:
        Counters per bucket.  The per-bucket scale field is amortised
        over this many flows, so larger buckets cost less memory but
        couple more flows to one scale.
    mode, rng:
        As for every :class:`~repro.counters.base.CountingScheme`.
    """

    name = "ice"

    def __init__(self, total_bits: int = 10, bucket_flows: int = 16,
                 mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        if total_bits < 1:
            raise ParameterError(f"total_bits must be >= 1, got {total_bits!r}")
        if bucket_flows < 1:
            raise ParameterError(
                f"bucket_flows must be >= 1, got {bucket_flows!r}")
        self.total_bits = int(total_bits)
        self.bucket_flows = int(bucket_flows)
        self._limit = 1 << self.total_bits
        self._bucket_of: Dict[Hashable, int] = {}
        self._members: Dict[int, List[Hashable]] = {}
        self._scale: Dict[int, int] = {}
        self.bucket_upscales = 0

    # -- internals -------------------------------------------------------

    def _prob_round(self, x: float) -> int:
        """Unbiased integer rounding: floor(x) + Bernoulli(frac(x))."""
        base = math.floor(x)
        frac = x - base
        if frac > 0.0 and self._rng.random() < frac:
            base += 1
        return int(base)

    def _assign(self, flow: Hashable) -> int:
        bucket = self._bucket_of.get(flow)
        if bucket is None:
            bucket = len(self._bucket_of) // self.bucket_flows
            self._bucket_of[flow] = bucket
            self._members.setdefault(bucket, []).append(flow)
            self._scale.setdefault(bucket, 0)
        return bucket

    def _upscale(self, bucket: int) -> None:
        """Grow the bucket's scale: halve every member with prob-rounding."""
        self._scale[bucket] += 1
        self.bucket_upscales += 1
        for member in self._members[bucket]:
            self._state[member] = self._prob_round(self._state[member] / 2.0)

    # -- CountingScheme hooks ---------------------------------------------

    def _update(self, flow: Hashable, amount: float) -> None:
        bucket = self._assign(flow)
        c = self._state.setdefault(flow, 0)
        c += self._prob_round(amount / float(1 << self._scale[bucket]))
        self._state[flow] = c
        while self._state[flow] >= self._limit:
            self._upscale(bucket)

    def estimate(self, flow: Hashable) -> float:
        c = self._state.get(flow)
        if c is None:
            return 0.0
        return c * float(1 << self._scale[self._bucket_of[flow]])

    def counter_value(self, flow: Hashable) -> int:
        return self._state.get(flow, 0)

    def bucket_scale(self, flow: Hashable) -> int:
        """Scale level of the bucket holding ``flow`` (0 for unseen)."""
        bucket = self._bucket_of.get(flow)
        return 0 if bucket is None else self._scale[bucket]

    def max_counter_bits(self) -> int:
        """Fixed-width counters; the shared scale field is amortised
        (``log2`` of the deepest scale over ``bucket_flows`` counters)
        and charged to the per-bucket overhead, matching the paper's
        accounting."""
        return self.total_bits

    def reset(self) -> None:
        super().reset()
        self._bucket_of.clear()
        self._members.clear()
        self._scale.clear()
        self.bucket_upscales = 0

    def kernel(self):
        from repro.core.kernels import ice_kernel_spec

        return ice_kernel_spec(self)
