"""Hybrid SRAM/DRAM (SD) full-size counter architecture.

The first solution family from Section II: small ``w``-bit counters in SRAM
absorb line-rate increments, and a Counter Management Algorithm (CMA)
periodically flushes SRAM counters into full-size DRAM counters before they
overflow.  We implement the classic Largest Counter First (LCF) CMA of
Shah et al. (IEEE Micro 2002): whenever the (slower) DRAM can accept a
write — modelled as once every ``dram_access_ratio`` packet updates — the
SRAM counter with the largest value is flushed.

The scheme is *exact* as long as no SRAM counter overflows between
flushes; LCF guarantees that for ``w >= log2(ln(N) * ratio ...)`` under
adversarial inputs, but this simulation simply *counts* overflow events so
experiments can explore under-provisioned configurations.  It also accounts
for the SRAM-to-DRAM bus traffic, the cost the DISCO paper calls out as the
architecture's bottleneck, and for the fact that reads must consult DRAM
(the slow-read limitation).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.counters.base import CountingScheme
from repro.counters.cma import CounterManagementAlgorithm, LargestCounterFirst
from repro.core.disco import counter_bits
from repro.errors import ParameterError

__all__ = ["SdCounters"]


class SdCounters(CountingScheme):
    """SD hybrid counter array with an LCF counter-management algorithm.

    Parameters
    ----------
    sram_bits:
        Width ``w`` of each SRAM counter; it saturates at ``2^w - 1`` and a
        saturated-increment is recorded as lost traffic (an overflow event).
    dram_access_ratio:
        Number of SRAM update opportunities per DRAM write slot — the
        DRAM/SRAM speed ratio (typically 10-20; the paper's IXP figures give
        roughly 12x for commodity parts).
    """

    name = "sd"

    def __init__(
        self,
        sram_bits: int = 8,
        dram_access_ratio: int = 12,
        mode: str = "volume",
        rng=None,
        cma: Optional[CounterManagementAlgorithm] = None,
    ) -> None:
        super().__init__(mode=mode, rng=rng)
        if sram_bits < 1:
            raise ParameterError(f"sram_bits must be >= 1, got {sram_bits!r}")
        if dram_access_ratio < 1:
            raise ParameterError(f"dram_access_ratio must be >= 1, got {dram_access_ratio!r}")
        self.sram_bits = sram_bits
        self._sram_max = (1 << sram_bits) - 1
        self.dram_access_ratio = dram_access_ratio
        self.cma = cma if cma is not None else LargestCounterFirst()
        # _state maps flow -> sram value; DRAM is a separate full-size map.
        self._dram: Dict[Hashable, int] = {}
        self._updates_since_flush = 0
        self.flushes = 0
        self.bus_bits_transferred = 0
        self.overflow_events = 0
        self.lost_traffic = 0
        self.dram_reads = 0

    # -- CMA ---------------------------------------------------------------

    def _flush_largest(self) -> None:
        """Commit the CMA's chosen SRAM counter to DRAM.

        (Named for the default Largest-Counter-First policy; the choice is
        delegated to :attr:`cma`.)
        """
        if not self._state:
            return
        flow = self.cma.choose(self._state)
        if flow is None:
            return
        value = self._state.get(flow, 0)
        if value == 0:
            return
        self._dram[flow] = self._dram.get(flow, 0) + value
        self._state[flow] = 0
        self.cma.notify_flush(flow)
        self.flushes += 1
        # One flush moves a w-bit value plus the counter index across the
        # bus; index width is the table's address width (approximated by the
        # current flow count's bit length).
        self.bus_bits_transferred += self.sram_bits + max(1, len(self._state).bit_length())

    # -- CountingScheme hooks ----------------------------------------------

    def _update(self, flow: Hashable, amount: float) -> None:
        current = self._state.get(flow, 0)
        if flow not in self._dram:
            self._dram[flow] = 0
        new_value = current + int(amount)
        if new_value > self._sram_max:
            # The SRAM counter cannot hold the increment: saturation, with
            # the excess traffic lost (an under-provisioned configuration).
            self.overflow_events += 1
            self.lost_traffic += new_value - self._sram_max
            new_value = self._sram_max
        self._state[flow] = new_value
        self.cma.notify_update(flow, new_value)
        self._updates_since_flush += 1
        if self._updates_since_flush >= self.dram_access_ratio:
            self._updates_since_flush = 0
            self._flush_largest()

    def estimate(self, flow: Hashable) -> float:
        """Exact total (modulo overflow loss).  Requires a DRAM read."""
        self.dram_reads += 1
        return float(self._dram.get(flow, 0) + self._state.get(flow, 0))

    def drain(self) -> None:
        """Flush every SRAM counter to DRAM (end of measurement interval)."""
        for flow in list(self._state):
            value = self._state[flow]
            if value:
                self._dram[flow] = self._dram.get(flow, 0) + value
                self._state[flow] = 0
                self.flushes += 1
                self.bus_bits_transferred += self.sram_bits + max(
                    1, len(self._state).bit_length()
                )

    def max_counter_bits(self) -> int:
        """Full-size accounting: the DRAM counter must hold the true total."""
        totals = [self._dram.get(f, 0) + self._state.get(f, 0) for f in self._dram]
        return counter_bits(int(max(totals, default=0)))

    def sram_counter_bits(self) -> int:
        """The fast-path SRAM width (fixed by construction)."""
        return self.sram_bits

    def kernel(self):
        from repro.core.kernels import sd_kernel_spec

        return sd_kernel_spec(self)

    def reset(self) -> None:
        super().reset()
        self._dram.clear()
        self._updates_since_flush = 0
        self.flushes = 0
        self.bus_bits_transferred = 0
        self.overflow_events = 0
        self.lost_traffic = 0
        self.dram_reads = 0
