"""Common interface for per-flow counting schemes.

Every scheme in :mod:`repro.counters` (and :class:`repro.core.DiscoSketch`)
exposes the same small surface so the experiment harness can drive them
interchangeably:

* ``observe(flow, length)`` — record one packet;
* ``estimate(flow)`` — current estimate of the flow's size or volume;
* ``flows()`` — iterator over observed flows;
* ``max_counter_bits()`` — the paper's fixed-array sizing metric (bits of
  the largest counter, or the fixed width for fixed-width schemes).

Schemes are constructed in one of two counting modes, matching the paper:
``"size"`` (count packets; each observation contributes 1) or ``"volume"``
(count bytes; each observation contributes the packet length).
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Hashable, Iterator, Union

from repro.errors import ParameterError

__all__ = ["CountingScheme", "resolve_rng", "check_mode", "effective_amount"]

FlowKey = Hashable


def resolve_rng(rng: Union[None, int, random.Random]) -> random.Random:
    """Normalise a seed / generator argument into a ``random.Random``."""
    return rng if isinstance(rng, random.Random) else random.Random(rng)


def check_mode(mode: str) -> str:
    if mode not in ("volume", "size"):
        raise ParameterError(f"mode must be 'volume' or 'size', got {mode!r}")
    return mode


def effective_amount(mode: str, length: float) -> float:
    """Traffic amount contributed by one packet under the given mode."""
    if not (length > 0):
        raise ParameterError(f"packet length must be > 0, got {length!r}")
    return 1.0 if mode == "size" else float(length)


class CountingScheme(abc.ABC):
    """Abstract base for per-flow counting schemes.

    Concrete schemes store whatever per-flow state they need in
    ``self._state`` (keyed by flow) and implement the three hooks below.
    """

    #: Human-readable scheme name used in experiment reports.
    name: str = "scheme"

    def __init__(self, mode: str = "volume",
                 rng: Union[None, int, random.Random] = None) -> None:
        self.mode = check_mode(mode)
        self._rng = resolve_rng(rng)
        self._state: Dict[FlowKey, object] = {}
        self.packets_observed = 0

    # -- hooks ---------------------------------------------------------

    @abc.abstractmethod
    def _update(self, flow: FlowKey, amount: float) -> None:
        """Apply one observation of ``amount`` traffic units to ``flow``."""

    @abc.abstractmethod
    def estimate(self, flow: FlowKey) -> float:
        """Current estimate of the flow's total (0.0 for unseen flows)."""

    @abc.abstractmethod
    def max_counter_bits(self) -> int:
        """Counter width this scheme requires (paper's sizing metric)."""

    def kernel(self):
        """Columnar-kernel offer for the array-native replay engine.

        Return a :class:`repro.core.kernels.KernelSpec` when this
        scheme's *current configuration* can be replayed columnar, else
        ``None`` (the default: schemes are scalar-only unless they opt
        in).  The harness probes through
        :func:`repro.core.kernels.kernel_spec`, which additionally
        rejects pre-observed schemes.
        """
        return None

    # -- shared driver ---------------------------------------------------

    def observe(self, flow: FlowKey, length: float = 1.0) -> None:
        """Record one packet of ``length`` bytes for ``flow``."""
        self.packets_observed += 1
        self._update(flow, effective_amount(self.mode, length))

    def observe_many(self, packets) -> None:
        """Record an iterable of ``(flow, length)`` pairs."""
        for flow, length in packets:
            self.observe(flow, length)

    def flows(self) -> Iterator[FlowKey]:
        return iter(self._state)

    def __len__(self) -> int:
        return len(self._state)

    def __contains__(self, flow: FlowKey) -> bool:
        return flow in self._state

    def estimates(self) -> Dict[FlowKey, float]:
        return {flow: self.estimate(flow) for flow in self._state}

    def reset(self) -> None:
        self._state.clear()
        self.packets_observed = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mode={self.mode!r}, flows={len(self)})"
