"""Small Active Counters (SAC) — Stanojevic, INFOCOM 2007.

SAC is the paper's main SRAM-only comparison point: the only prior scheme
that supports both flow-size and flow-volume counting with on-line reads.

Each q-bit counter is split into an estimation part ``A`` (``k`` bits) and
an exponent part ``mode`` (``s`` bits), with a *global* scaling parameter
``r`` shared by every counter.  The estimator is ``A * 2^(r*mode)``.  When a
packet of ``l`` bytes arrives, ``A`` is increased by ``l / 2^(r*mode)``
using probabilistic rounding (which keeps the estimator unbiased).  If ``A``
overflows its ``k`` bits, ``mode`` is incremented and ``A`` is renormalised
(divided by ``2^r``, again with probabilistic rounding).  If ``mode``
overflows its ``s`` bits, the *global* ``r`` is incremented and **all**
counters are renormalised — the costly operation the DISCO paper criticises;
this implementation counts those events so experiments can report them.
"""

from __future__ import annotations

import math
from typing import Hashable, Tuple

from repro.counters.base import CountingScheme
from repro.errors import ParameterError

__all__ = ["SmallActiveCounters"]


class SmallActiveCounters(CountingScheme):
    """Per-flow SAC counter array.

    Parameters
    ----------
    total_bits:
        Counter width ``q = k + s``.  The evaluation section of the DISCO
        paper fixes one part at 3 bits and grows the other with the counter
        size; here the exponent part defaults to 3 bits.
    mode_bits:
        Bits of the exponent part ``s``.
    mode, rng:
        As for every :class:`~repro.counters.base.CountingScheme`.
    initial_r:
        Starting value of the global scale parameter (must be >= 1 so that
        renormalisation actually shrinks ``A``).
    """

    name = "sac"

    def __init__(
        self,
        total_bits: int,
        mode_bits: int = 3,
        mode: str = "volume",
        rng=None,
        initial_r: int = 1,
    ) -> None:
        super().__init__(mode=mode, rng=rng)
        if mode_bits < 1:
            raise ParameterError(f"mode_bits must be >= 1, got {mode_bits!r}")
        if total_bits <= mode_bits:
            raise ParameterError(
                f"total_bits ({total_bits}) must exceed mode_bits ({mode_bits})"
            )
        if initial_r < 1:
            raise ParameterError(f"initial_r must be >= 1, got {initial_r!r}")
        self.total_bits = total_bits
        self.mode_bits = mode_bits
        self.estimation_bits = total_bits - mode_bits
        self._a_limit = 1 << self.estimation_bits
        self._mode_limit = 1 << self.mode_bits
        self.r = initial_r
        self.global_renormalizations = 0
        self.counter_renormalizations = 0

    # -- internals -------------------------------------------------------

    def _prob_round(self, x: float) -> int:
        """Unbiased integer rounding: floor(x) + Bernoulli(frac(x))."""
        base = math.floor(x)
        frac = x - base
        if frac > 0.0 and self._rng.random() < frac:
            base += 1
        return int(base)

    def _fit(self, value: float) -> Tuple[int, int]:
        """Re-encode a raw value as ``(A, mode)`` under the current ``r``.

        Picks the smallest ``mode`` whose scaled mantissa fits in ``k``
        bits, using probabilistic rounding for the mantissa.
        """
        mode = 0
        while mode < self._mode_limit - 1 and value / (1 << (self.r * mode)) >= self._a_limit:
            mode += 1
        a = self._prob_round(value / (1 << (self.r * mode)))
        if a >= self._a_limit:
            # Rounding pushed the mantissa over; bump the exponent once more
            # if possible, else saturate.
            if mode < self._mode_limit - 1:
                mode += 1
                a = self._prob_round(value / (1 << (self.r * mode)))
            a = min(a, self._a_limit - 1)
        return a, mode

    def _increase_r(self) -> None:
        """Global renormalisation: grow ``r`` and re-encode every counter."""
        values = [(flow, self._decode(state)) for flow, state in self._state.items()]
        self.r += 1
        self.global_renormalizations += 1
        for flow, value in values:
            self._state[flow] = self._fit(value)

    def _decode(self, state: Tuple[int, int]) -> float:
        a, mode = state
        return a * float(1 << (self.r * mode))

    # -- CountingScheme hooks ---------------------------------------------

    def _update(self, flow: Hashable, amount: float) -> None:
        a, mode = self._state.get(flow, (0, 0))
        a += self._prob_round(amount / (1 << (self.r * mode)))
        while a >= self._a_limit:
            if mode + 1 >= self._mode_limit:
                # mode would overflow: raise the global scale and re-encode
                # this counter's current value, then re-check.
                self._state[flow] = (min(a, self._a_limit - 1), mode)
                value = a * float(1 << (self.r * mode))
                self._increase_r()
                a, mode = self._fit(value)
                continue
            mode += 1
            self.counter_renormalizations += 1
            a = self._prob_round(a / (1 << self.r))
        self._state[flow] = (a, mode)

    def estimate(self, flow: Hashable) -> float:
        state = self._state.get(flow)
        if state is None:
            return 0.0
        return self._decode(state)

    def max_counter_bits(self) -> int:
        """SAC is a fixed-width scheme: every counter costs ``k + s`` bits."""
        return self.total_bits

    def kernel(self):
        from repro.core.kernels import sac_kernel_spec

        return sac_kernel_spec(self)

    def bits_required_for(self, value: float) -> int:
        """Bits a SAC counter needs to represent ``value`` without a global
        ``r`` change — the Figure 9 accounting.

        The mantissa always costs ``k`` bits; the exponent must reach
        ``mode = ceil(log2(value / 2^k) / r)`` and costs its bit-length.
        """
        if value < 0:
            raise ParameterError(f"value must be >= 0, got {value!r}")
        if value < self._a_limit:
            needed_mode = 0
        else:
            needed_mode = math.ceil(math.log2(value / (self._a_limit - 1)) / self.r)
        mode_bits = max(1, needed_mode.bit_length() if needed_mode else 1)
        return self.estimation_bits + mode_bits
