"""Count-Min sketches — the keyless alternative to per-flow counters.

DISCO (like SAC/SD/BRICK) keeps one counter *per flow*, which requires a
flow table.  The Count-Min family instead shares a small 2-D counter array
among all flows via hashing: no keys, bounded memory, but estimates carry
a positive *collision* bias (`estimate >= truth`, within ``eps * total``
with probability ``1 - delta`` for width ``e/eps`` and depth ``ln(1/δ)``).

Three variants are provided:

* :class:`CountMin` — the textbook sketch (Cormode & Muthukrishnan 2005);
* conservative update (``conservative=True``) — only raise the counters
  that must rise; strictly less overestimation, same reads;
* :class:`DiscoCountMin` — each array cell is a **DISCO** counter driven
  by Algorithm 1, composing the two orthogonal memory levers: hashing
  shares cells across flows, discounting compresses each cell's width.
  The read-out is ``min`` over the rows' ``f(c)`` values; it inherits
  CM's overestimation and DISCO's randomisation.

The equal-memory comparison against per-flow DISCO lives in
``bench_baseline_countmin``.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.counters.base import CountingScheme
from repro.core.disco import counter_bits
from repro.core.functions import GeometricCountingFunction
from repro.core.update import compute_update
from repro.errors import ParameterError
from repro.flows.hashing import encode_key, fnv1a64

__all__ = ["CountMin", "DiscoCountMin"]

_ROW_SALTS = [b"cm0", b"cm1", b"cm2", b"cm3", b"cm4", b"cm5", b"cm6", b"cm7"]


def _row_index(flow: Hashable, row: int, width: int) -> int:
    if row >= len(_ROW_SALTS):
        raise ParameterError(f"at most {len(_ROW_SALTS)} rows supported")
    return fnv1a64(_ROW_SALTS[row] + encode_key(flow)) % width


class CountMin(CountingScheme):
    """Classic Count-Min sketch with optional conservative update.

    Parameters
    ----------
    width, depth:
        Array geometry: ``depth`` rows of ``width`` counters.
    conservative:
        Use conservative update (increment only rows at the current
        minimum, up to the new minimum).
    """

    name = "count-min"

    def __init__(self, width: int, depth: int = 3, conservative: bool = False,
                 mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width!r}")
        if not (1 <= depth <= len(_ROW_SALTS)):
            raise ParameterError(
                f"depth must be in 1..{len(_ROW_SALTS)}, got {depth!r}"
            )
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self.rows: List[List[int]] = [[0] * width for _ in range(depth)]

    def _cells(self, flow: Hashable) -> List[int]:
        return [_row_index(flow, r, self.width) for r in range(self.depth)]

    def _update(self, flow: Hashable, amount: float) -> None:
        self._state.setdefault(flow, True)
        cells = self._cells(flow)
        increment = int(amount)
        if not self.conservative:
            for r, i in enumerate(cells):
                self.rows[r][i] += increment
            return
        current = min(self.rows[r][i] for r, i in enumerate(cells))
        target = current + increment
        for r, i in enumerate(cells):
            if self.rows[r][i] < target:
                self.rows[r][i] = target

    def estimate(self, flow: Hashable) -> float:
        return float(min(self.rows[r][i]
                         for r, i in enumerate(self._cells(flow))))

    def max_counter_bits(self) -> int:
        largest = max((max(row) for row in self.rows), default=0)
        return counter_bits(largest)

    def memory_bits(self) -> int:
        """Array memory at the width the largest cell needs."""
        return self.width * self.depth * self.max_counter_bits()


class DiscoCountMin(CountingScheme):
    """Count-Min whose cells are DISCO counters (Algorithm 1 per cell).

    Each packet drives the flow's ``depth`` cells through the DISCO
    update with the packet's amount; the estimate is the minimum of the
    cells' ``f(c)``.  Memory = ``width * depth`` cells of
    ``ceil(log2(f^{-1}(max cell traffic)))`` bits — both levers at once.
    """

    name = "disco-cm"

    def __init__(self, b: float, width: int, depth: int = 3,
                 mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width!r}")
        if not (1 <= depth <= len(_ROW_SALTS)):
            raise ParameterError(
                f"depth must be in 1..{len(_ROW_SALTS)}, got {depth!r}"
            )
        self.function = GeometricCountingFunction(b)
        self.width = width
        self.depth = depth
        self.rows: List[List[int]] = [[0] * width for _ in range(depth)]

    def _update(self, flow: Hashable, amount: float) -> None:
        self._state.setdefault(flow, True)
        for r in range(self.depth):
            i = _row_index(flow, r, self.width)
            c = self.rows[r][i]
            decision = compute_update(self.function, c, amount)
            advance = decision.delta
            if self._rng.random() < decision.probability:
                advance += 1
            self.rows[r][i] = c + advance

    def estimate(self, flow: Hashable) -> float:
        return min(
            self.function.value(self.rows[r][_row_index(flow, r, self.width)])
            for r in range(self.depth)
        )

    def max_counter_bits(self) -> int:
        largest = max((max(row) for row in self.rows), default=0)
        return counter_bits(largest)

    def memory_bits(self) -> int:
        return self.width * self.depth * self.max_counter_bits()
