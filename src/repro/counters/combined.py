"""DISCO composed with variable-length counter storage (BRICK).

Section I of the paper: "BRICK/CB and the method proposed in this paper are
complementary to each other and can work together to achieve further
reduction on counter size."  The composition is direct: DISCO's update rule
decides *what value* each flow's counter holds (a compressed, slowly-growing
integer), and BRICK decides *how those integers are laid out in memory*
(variable-length sub-counter chains).  Because DISCO counter values are
exponentially smaller than true flow volumes, every BRICK level shrinks.

:class:`DiscoBrick` runs Algorithm 1 against values stored in a BRICK
layout and exposes both the DISCO estimate and the combined memory
accounting, which the ``bench_ablation_combined`` benchmark compares with
exact-values-in-BRICK and with fixed-array DISCO.
"""

from __future__ import annotations

from typing import Hashable

from repro.counters.base import CountingScheme
from repro.counters.brick import BrickCounters, BrickDesign
from repro.core.functions import CountingFunction, GeometricCountingFunction
from repro.core.update import compute_update

__all__ = ["DiscoBrick"]


class DiscoBrick(CountingScheme):
    """DISCO counters stored in a BRICK bucket layout.

    Parameters
    ----------
    b:
        DISCO growth base.
    design:
        BRICK layout sized for *DISCO counter values* (not raw volumes);
        use :meth:`BrickDesign.for_values` on a sample of DISCO counters.
    num_buckets:
        BRICK bucket count.
    """

    name = "disco+brick"

    def __init__(self, b: float, design: BrickDesign, num_buckets: int,
                 mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        self.function: CountingFunction = GeometricCountingFunction(b)
        # The BRICK store holds raw integers; we drive it with DISCO advances.
        self._store = BrickCounters(design, num_buckets, mode=mode)

    def _update(self, flow: Hashable, amount: float) -> None:
        self._state.setdefault(flow, True)
        c = int(self._store.estimate(flow))
        decision = compute_update(self.function, c, amount)
        advance = decision.delta
        if self._rng.random() < decision.probability:
            advance += 1
        if advance:
            # BrickCounters applies integer increments; reuse its layout and
            # overflow accounting.
            self._store._update(flow, float(advance))

    def estimate(self, flow: Hashable) -> float:
        return self.function.value(int(self._store.estimate(flow)))

    def counter_value(self, flow: Hashable) -> int:
        return int(self._store.estimate(flow))

    def max_counter_bits(self) -> int:
        return self._store.max_counter_bits()

    def memory_bits(self) -> int:
        """Combined structure memory (BRICK layout over DISCO values)."""
        return self._store.memory_bits()

    @property
    def bucket_full_events(self) -> int:
        return self._store.bucket_full_events

    @property
    def level_overflow_events(self) -> int:
        return self._store.level_overflow_events
