"""Counter Management Algorithms for the hybrid SRAM/DRAM architecture.

The SD literature's central design question (Section II-A of the DISCO
paper) is *which* SRAM counter to flush when a DRAM write slot opens:

* **LCF** — Largest Counter First (Shah et al., IEEE Micro 2002): flush
  the fullest counter; optimal SRAM width up to constants, but needs a
  priority structure.
* **LCF-with-threshold** (Ramabhadran & Varghese, SIGCOMM 2003 style):
  track only counters above a threshold; pick the largest tracked one,
  falling back to a round-robin scan — cheaper state, near-LCF behaviour.
* **Round-robin** — flush counters cyclically regardless of value; the
  trivial CMA, needs the widest SRAM counters to stay safe.

All policies see the same interface: the per-flow SRAM values, and return
which flow to flush.  They are deliberately *advisory* — the SD array
counts overflows either way, so the ablation benchmark can show the policy
quality difference the literature is about.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, List, Optional

from repro.errors import ParameterError

__all__ = ["CounterManagementAlgorithm", "LargestCounterFirst",
           "ThresholdLcf", "RoundRobin", "make_cma"]


class CounterManagementAlgorithm(abc.ABC):
    """Strategy deciding which SRAM counter a DRAM write slot evicts."""

    name: str = "cma"

    @abc.abstractmethod
    def choose(self, sram: Dict[Hashable, int]) -> Optional[Hashable]:
        """Return the flow whose counter should be flushed (None = skip)."""

    def notify_update(self, flow: Hashable, value: int) -> None:
        """Called after every SRAM counter update (hook for tracking)."""

    def notify_flush(self, flow: Hashable) -> None:
        """Called after a counter was flushed to DRAM."""


class LargestCounterFirst(CounterManagementAlgorithm):
    """Scan for the largest counter (the reference LCF)."""

    name = "lcf"

    def choose(self, sram: Dict[Hashable, int]) -> Optional[Hashable]:
        if not sram:
            return None
        flow = max(sram, key=sram.get)
        return flow if sram[flow] > 0 else None


class ThresholdLcf(CounterManagementAlgorithm):
    """LCF over a tracked set of above-threshold counters.

    Counters crossing ``threshold`` enter the tracked set on update;
    flushes pick the largest tracked counter without scanning the whole
    array.  When nothing is tracked, a round-robin fallback keeps small
    counters from silting up.
    """

    name = "threshold-lcf"

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ParameterError(f"threshold must be >= 1, got {threshold!r}")
        self.threshold = threshold
        self._tracked: Dict[Hashable, int] = {}
        self._fallback = RoundRobin()

    def notify_update(self, flow: Hashable, value: int) -> None:
        if value >= self.threshold:
            self._tracked[flow] = value
        else:
            self._tracked.pop(flow, None)

    def notify_flush(self, flow: Hashable) -> None:
        self._tracked.pop(flow, None)
        self._fallback.notify_flush(flow)

    def choose(self, sram: Dict[Hashable, int]) -> Optional[Hashable]:
        if self._tracked:
            return max(self._tracked, key=self._tracked.get)
        return self._fallback.choose(sram)


class RoundRobin(CounterManagementAlgorithm):
    """Cycle through flows in insertion order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._order: List[Hashable] = []
        self._seen: set = set()
        self._cursor = 0

    def notify_update(self, flow: Hashable, value: int) -> None:
        if flow not in self._seen:
            self._seen.add(flow)
            self._order.append(flow)

    def choose(self, sram: Dict[Hashable, int]) -> Optional[Hashable]:
        if not self._order:
            # Flows observed before this CMA was attached.
            for flow in sram:
                self.notify_update(flow, sram[flow])
            if not self._order:
                return None
        for _ in range(len(self._order)):
            flow = self._order[self._cursor % len(self._order)]
            self._cursor += 1
            if sram.get(flow, 0) > 0:
                return flow
        return None


def make_cma(name: str, threshold: int = 64) -> CounterManagementAlgorithm:
    """Factory by policy name: ``lcf``, ``threshold-lcf`` or ``round-robin``."""
    if name == "lcf":
        return LargestCounterFirst()
    if name == "threshold-lcf":
        return ThresholdLcf(threshold)
    if name == "round-robin":
        return RoundRobin()
    raise ParameterError(f"unknown CMA {name!r}")
