"""Counter Management Algorithms for the hybrid SRAM/DRAM architecture.

The SD literature's central design question (Section II-A of the DISCO
paper) is *which* SRAM counter to flush when a DRAM write slot opens:

* **LCF** — Largest Counter First (Shah et al., IEEE Micro 2002): flush
  the fullest counter; optimal SRAM width up to constants, but needs a
  priority structure.
* **LCF-with-threshold** (Ramabhadran & Varghese, SIGCOMM 2003 style):
  track only counters above a threshold; pick the largest tracked one,
  falling back to a round-robin scan — cheaper state, near-LCF behaviour.
* **Round-robin** — flush counters cyclically regardless of value; the
  trivial CMA, needs the widest SRAM counters to stay safe.

All policies see the same interface: the per-flow SRAM values, and return
which flow to flush.  They are deliberately *advisory* — the SD array
counts overflows either way, so the ablation benchmark can show the policy
quality difference the literature is about.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.errors import ParameterError

__all__ = ["CounterManagementAlgorithm", "LargestCounterFirst",
           "ThresholdLcf", "RoundRobin", "make_cma"]


class CounterManagementAlgorithm(abc.ABC):
    """Strategy deciding which SRAM counter a DRAM write slot evicts."""

    name: str = "cma"

    @abc.abstractmethod
    def choose(self, sram: Dict[Hashable, int]) -> Optional[Hashable]:
        """Return the flow whose counter should be flushed (None = skip)."""

    def notify_update(self, flow: Hashable, value: int) -> None:
        """Called after every SRAM counter update (hook for tracking)."""

    def notify_flush(self, flow: Hashable) -> None:
        """Called after a counter was flushed to DRAM."""

    def vector_policy(self):
        """Factory of batch choosers for the columnar SD kernel.

        Return a zero-argument callable building a fresh object with
        ``choose_batch(sram: np.ndarray, m: int) -> np.ndarray`` (local
        indices of up to ``m`` nonzero counters to flush), or ``None``
        when this policy has no batch form — the SD kernel then declines
        to vectorise and the scheme replays per-packet.  One chooser is
        built per replica, so stateful policies (round-robin cursors)
        stay replica-local.
        """
        return None


class LargestCounterFirst(CounterManagementAlgorithm):
    """Scan for the largest counter (the reference LCF)."""

    name = "lcf"

    def choose(self, sram: Dict[Hashable, int]) -> Optional[Hashable]:
        if not sram:
            return None
        flow = max(sram, key=sram.get)
        return flow if sram[flow] > 0 else None

    def vector_policy(self):
        return _BatchLcf


class ThresholdLcf(CounterManagementAlgorithm):
    """LCF over a tracked set of above-threshold counters.

    Counters crossing ``threshold`` enter the tracked set on update;
    flushes pick the largest tracked counter without scanning the whole
    array.  When nothing is tracked, a round-robin fallback keeps small
    counters from silting up.
    """

    name = "threshold-lcf"

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ParameterError(f"threshold must be >= 1, got {threshold!r}")
        self.threshold = threshold
        self._tracked: Dict[Hashable, int] = {}
        self._fallback = RoundRobin()

    def notify_update(self, flow: Hashable, value: int) -> None:
        if value >= self.threshold:
            self._tracked[flow] = value
        else:
            self._tracked.pop(flow, None)

    def notify_flush(self, flow: Hashable) -> None:
        self._tracked.pop(flow, None)
        self._fallback.notify_flush(flow)

    def choose(self, sram: Dict[Hashable, int]) -> Optional[Hashable]:
        if self._tracked:
            return max(self._tracked, key=self._tracked.get)
        return self._fallback.choose(sram)

    def vector_policy(self):
        threshold = self.threshold
        return lambda: _BatchThresholdLcf(threshold)


class RoundRobin(CounterManagementAlgorithm):
    """Cycle through flows in insertion order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._order: List[Hashable] = []
        self._seen: set = set()
        self._cursor = 0

    def notify_update(self, flow: Hashable, value: int) -> None:
        if flow not in self._seen:
            self._seen.add(flow)
            self._order.append(flow)

    def choose(self, sram: Dict[Hashable, int]) -> Optional[Hashable]:
        if not self._order:
            # Flows observed before this CMA was attached.
            for flow in sram:
                self.notify_update(flow, sram[flow])
            if not self._order:
                return None
        for _ in range(len(self._order)):
            flow = self._order[self._cursor % len(self._order)]
            self._cursor += 1
            if sram.get(flow, 0) > 0:
                return flow
        return None

    def vector_policy(self):
        return _BatchRoundRobin


# -- batch forms for the columnar SD kernel ---------------------------------
#
# A batch chooser answers "which m counters do m consecutive DRAM slots
# evict" over an SRAM *array* (flows in compiled-trace order) instead of a
# dict.  Flushing the chosen set at once equals m sequential single
# flushes when no updates intervene — exactly the within-column situation
# the kernel batches.


class _BatchLcf:
    """Largest-m counters first (ties broken arbitrarily, like dict LCF)."""

    def choose_batch(self, sram: np.ndarray, m: int) -> np.ndarray:
        nonzero = np.flatnonzero(sram > 0)
        if m <= 0 or nonzero.size == 0:
            return np.empty(0, dtype=np.int64)
        if m >= nonzero.size:
            return nonzero
        part = np.argpartition(sram[nonzero], nonzero.size - m)
        return nonzero[part[nonzero.size - m:]]


class _BatchRoundRobin:
    """Cycle through lanes in array order, skipping empty counters."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose_batch(self, sram: np.ndarray, m: int) -> np.ndarray:
        n = sram.size
        if m <= 0 or n == 0:
            return np.empty(0, dtype=np.int64)
        order = (np.arange(n, dtype=np.int64) + self._cursor) % n
        nonzero = order[sram[order] > 0]
        chosen = nonzero[:m]
        if chosen.size:
            self._cursor = int(chosen[-1] + 1) % n
        return chosen


class _BatchThresholdLcf:
    """Largest above-threshold counters, round-robin for leftover slots."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._fallback = _BatchRoundRobin()

    def choose_batch(self, sram: np.ndarray, m: int) -> np.ndarray:
        if m <= 0 or sram.size == 0:
            return np.empty(0, dtype=np.int64)
        tracked = np.flatnonzero(sram >= self.threshold)
        if tracked.size >= m:
            part = np.argpartition(sram[tracked], tracked.size - m)
            return tracked[part[tracked.size - m:]]
        rest = m - tracked.size
        remaining = sram.copy()
        remaining[tracked] = 0
        extra = self._fallback.choose_batch(remaining, rest)
        if tracked.size == 0:
            return extra
        return np.concatenate([tracked, extra])


def make_cma(name: str, threshold: int = 64) -> CounterManagementAlgorithm:
    """Factory by policy name: ``lcf``, ``threshold-lcf`` or ``round-robin``."""
    if name == "lcf":
        return LargestCounterFirst()
    if name == "threshold-lcf":
        return ThresholdLcf(threshold)
    if name == "round-robin":
        return RoundRobin()
    raise ParameterError(f"unknown CMA {name!r}")
