"""BRICK — Bucketized Rank-Indexed Counters (Hua et al., ANCS 2008).

BRICK is an *exact* variable-length counter architecture the DISCO paper
cites as complementary related work: counters are grouped into fixed-size
buckets, and each counter is stored as a chain of small sub-counters across
"levels".  Level 1 holds one sub-counter per flow; higher levels hold fewer
sub-counters, claimed on demand (via a rank-indexed bitmap) by the counters
that grow large.  Because only a statistical minority of counters is ever
large, total memory is far below ``num_flows * full_width``.

This implementation keeps the exact values (BRICK is exact by design) and
faithfully accounts for the memory layout and its failure mode: if more
counters in a bucket need a level-``j`` extension than the level has
sub-counters, the bucket overflows (a real device would re-bucket or fall
back; we count the events and keep counting exactly so accuracy experiments
stay meaningful).

The point of carrying BRICK in a DISCO repository is Section I's claim that
the two compose: storing DISCO's *compressed* counter values inside BRICK
shrinks every level — see :mod:`repro.counters.combined`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.counters.base import CountingScheme
from repro.errors import ParameterError
from repro.flows.hashing import stable_hash

__all__ = ["BrickDesign", "BrickCounters"]


@dataclass(frozen=True)
class BrickDesign:
    """Static layout of a BRICK bucket.

    Attributes
    ----------
    bucket_size:
        Number of flows (level-1 sub-counters) per bucket, ``h``.
    level_widths:
        Bits of the sub-counter at each level, ``k_1 .. k_L``.  A counter
        whose value needs ``K`` bits occupies levels ``1..j`` where
        ``k_1 + ... + k_j >= K``.
    level_capacities:
        Sub-counters available at each level, ``n_1 .. n_L`` with
        ``n_1 == bucket_size`` and ``n_j`` non-increasing.
    """

    bucket_size: int
    level_widths: Tuple[int, ...]
    level_capacities: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.bucket_size < 1:
            raise ParameterError(f"bucket_size must be >= 1, got {self.bucket_size!r}")
        if not self.level_widths:
            raise ParameterError("at least one level is required")
        if len(self.level_widths) != len(self.level_capacities):
            raise ParameterError("level_widths and level_capacities must have equal length")
        if any(w < 1 for w in self.level_widths):
            raise ParameterError(f"level widths must be >= 1, got {self.level_widths!r}")
        if self.level_capacities[0] != self.bucket_size:
            raise ParameterError("level 1 must have one sub-counter per bucket slot")
        for a, b in zip(self.level_capacities, self.level_capacities[1:]):
            if b > a:
                raise ParameterError("level capacities must be non-increasing")

    @property
    def levels(self) -> int:
        return len(self.level_widths)

    @property
    def total_width(self) -> int:
        """Maximum representable counter width in bits."""
        return sum(self.level_widths)

    @property
    def max_value(self) -> int:
        return (1 << self.total_width) - 1

    def levels_needed(self, value: int) -> int:
        """How many levels a counter holding ``value`` occupies."""
        if value < 0:
            raise ParameterError(f"value must be >= 0, got {value!r}")
        bits = max(1, value.bit_length())
        cumulative = 0
        for j, width in enumerate(self.level_widths, start=1):
            cumulative += width
            if bits <= cumulative:
                return j
        raise ParameterError(
            f"value {value} needs {bits} bits; design holds {self.total_width}"
        )

    def bits_per_bucket(self) -> int:
        """Memory of one bucket: sub-counter arrays plus rank bitmaps.

        Every level except the last carries a bitmap with one bit per
        sub-counter marking "extends into the next level"; rank over that
        bitmap is the next level's index (the rank-indexing trick).
        """
        array_bits = sum(n * k for n, k in zip(self.level_capacities, self.level_widths))
        bitmap_bits = sum(self.level_capacities[:-1])
        return array_bits + bitmap_bits

    @classmethod
    def for_values(
        cls,
        values: Sequence[int],
        bucket_size: int = 64,
        level_widths: Sequence[int] = (4, 4, 6, 8, 10),
        safety: float = 3.0,
    ) -> "BrickDesign":
        """Size level capacities from an (expected) counter-value sample.

        For each level ``j >= 2``, the fraction ``p_j`` of sample values
        needing that level is measured and the capacity is provisioned at
        the binomial mean plus ``safety`` standard deviations — the same
        tail-probability provisioning argument as the BRICK paper, with the
        empirical sample standing in for the assumed distribution.
        """
        if not values:
            raise ParameterError("a non-empty value sample is required")
        widths = tuple(int(w) for w in level_widths)
        max_bits = max(max(1, int(v).bit_length()) for v in values)
        # Trim unused trailing levels but keep enough for the sample's max.
        cumulative, needed_levels = 0, len(widths)
        for j, w in enumerate(widths, start=1):
            cumulative += w
            if cumulative >= max_bits:
                needed_levels = j
                break
        else:
            raise ParameterError(
                f"sample needs {max_bits} bits; widths {widths!r} hold {cumulative}"
            )
        widths = widths[:needed_levels]
        capacities: List[int] = [bucket_size]
        total = len(values)
        prefix = 0
        for j in range(1, needed_levels):
            prefix += widths[j - 1]
            p = sum(1 for v in values if max(1, int(v).bit_length()) > prefix) / total
            mean = bucket_size * p
            std = math.sqrt(max(bucket_size * p * (1.0 - p), 0.0))
            cap = min(bucket_size, max(1, int(math.ceil(mean + safety * std))))
            capacities.append(min(cap, capacities[-1]))
        return cls(bucket_size=bucket_size, level_widths=widths,
                   level_capacities=tuple(capacities))


class _Bucket:
    """One BRICK bucket: slot assignment plus per-level occupancy."""

    __slots__ = ("slots", "values")

    def __init__(self) -> None:
        self.slots: Dict[Hashable, int] = {}
        self.values: List[int] = []

    def slot_for(self, flow: Hashable, capacity: int) -> int:
        slot = self.slots.get(flow)
        if slot is not None:
            return slot
        if len(self.slots) >= capacity:
            return -1
        slot = len(self.values)
        self.slots[flow] = slot
        self.values.append(0)
        return slot


class BrickCounters(CountingScheme):
    """Exact per-flow counters stored in a BRICK layout.

    Parameters
    ----------
    design:
        Bucket layout (see :class:`BrickDesign`).
    num_buckets:
        Buckets in the array; flows are assigned by hash.  Size it at
        roughly ``expected_flows / bucket_size * 1.2`` — bucket-full events
        are counted in :attr:`bucket_full_events`.
    """

    name = "brick"

    def __init__(self, design: BrickDesign, num_buckets: int,
                 mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        if num_buckets < 1:
            raise ParameterError(f"num_buckets must be >= 1, got {num_buckets!r}")
        self.design = design
        self.num_buckets = num_buckets
        self._buckets: List[_Bucket] = [_Bucket() for _ in range(num_buckets)]
        self.bucket_full_events = 0
        self.level_overflow_events = 0
        self.value_overflow_events = 0

    def _bucket_of(self, flow: Hashable) -> _Bucket:
        return self._buckets[stable_hash(flow) % self.num_buckets]

    def _update(self, flow: Hashable, amount: float) -> None:
        bucket = self._bucket_of(flow)
        slot = bucket.slot_for(flow, self.design.bucket_size)
        if slot < 0:
            self.bucket_full_events += 1
            return
        self._state.setdefault(flow, True)  # membership for flows()/len()
        old = bucket.values[slot]
        new = old + int(amount)
        if new > self.design.max_value:
            self.value_overflow_events += 1
            new = self.design.max_value
        # Level occupancy check: would this counter's extension exceed the
        # level's sub-counter pool?
        new_levels = self.design.levels_needed(new)
        old_levels = self.design.levels_needed(old) if old else 1
        if new_levels > old_levels:
            for level in range(old_levels + 1, new_levels + 1):
                occupancy = sum(
                    1 for v in bucket.values if self.design.levels_needed(v) >= level
                )
                if occupancy + 1 > self.design.level_capacities[level - 1]:
                    self.level_overflow_events += 1
        bucket.values[slot] = new

    def estimate(self, flow: Hashable) -> float:
        bucket = self._bucket_of(flow)
        slot = bucket.slots.get(flow)
        if slot is None:
            return 0.0
        return float(bucket.values[slot])

    def max_counter_bits(self) -> int:
        """Full chain width — what a naive fixed array would need."""
        return self.design.total_width

    def memory_bits(self) -> int:
        """Total structure memory: all buckets at the static design size."""
        return self.num_buckets * self.design.bits_per_bucket()

    def bits_per_flow(self) -> float:
        """Amortised memory per observed flow."""
        if not self._state:
            return float(self.memory_bits())
        return self.memory_bits() / len(self._state)
