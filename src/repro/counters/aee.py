"""AEE — Additive Error Estimation counters (arXiv:2004.10332).

AEE trades the *multiplicative* error of compression schemes like ANLS,
SAC and DISCO for a flow-independent **additive** error: every update is
sampled with one *constant* probability ``p`` (independent of the
counter's current value) and, when sampled, the counter advances by the
full update amount.  The estimator is ``c / p`` — unbiased, with a
variance that does not grow with the flow's size, so elephants are
estimated almost exactly while mice carry the fixed additive noise.

The constant ``p`` is AEE's whole performance pitch: the per-packet work
is one uniform draw, one compare and one add — no counting-function
gaps, no renormalisation cascades, no per-unit loops.  That makes the
update law a *bare compare-add*, which is why this scheme's columnar
kernel has a bit-identical native lowering (see
:func:`repro.core.native.aee_runner`) where the multiplicative schemes
only manage distributional equivalence.

This implementation keeps the sampled counter in a fixed ``total_bits``
word and saturates (clamping, with an event count) instead of the
paper's downsampling stage — downsampling would re-couple the update law
to the counter value and forfeit the compare-add fast path; sizing ``p``
from the traffic budget (see ``repro.schemes``) keeps saturation a
telemetry event, not a regime.
"""

from __future__ import annotations

from typing import Hashable

from repro.counters.base import CountingScheme
from repro.errors import ParameterError

__all__ = ["AeeCounters"]


class AeeCounters(CountingScheme):
    """Per-flow AEE counter array.

    Parameters
    ----------
    p:
        Constant sampling probability in ``(0, 1]``.  Every update is
        admitted with probability ``p`` regardless of the counter value;
        the estimator divides it back out.
    total_bits:
        Fixed counter width; the counter saturates at ``2^total_bits - 1``
        (counted in ``saturation_events``).
    mode, rng:
        As for every :class:`~repro.counters.base.CountingScheme`.
    """

    name = "aee"

    def __init__(self, p: float, total_bits: int = 16,
                 mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        if not (0.0 < p <= 1.0):
            raise ParameterError(f"p must be in (0, 1], got {p!r}")
        if total_bits < 1:
            raise ParameterError(f"total_bits must be >= 1, got {total_bits!r}")
        self.p = float(p)
        self.total_bits = int(total_bits)
        self._max_value = (1 << self.total_bits) - 1
        self.saturation_events = 0

    # -- CountingScheme hooks ---------------------------------------------

    def _update(self, flow: Hashable, amount: float) -> None:
        c = self._state.setdefault(flow, 0)
        if self._rng.random() < self.p:
            c += int(amount)
            if c > self._max_value:
                self.saturation_events += 1
                c = self._max_value
            self._state[flow] = c

    def estimate(self, flow: Hashable) -> float:
        return self._state.get(flow, 0) / self.p

    def counter_value(self, flow: Hashable) -> int:
        return self._state.get(flow, 0)

    def max_counter_bits(self) -> int:
        """AEE is a fixed-width scheme: every counter costs ``total_bits``."""
        return self.total_bits

    def kernel(self):
        from repro.core.kernels import aee_kernel_spec

        return aee_kernel_spec(self)
