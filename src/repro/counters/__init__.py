"""Baseline counting schemes the paper compares against (plus ground truth).

* :class:`ExactCounters` — full-size exact counters (ground truth; SD line).
* :class:`SdCounters` — hybrid SRAM/DRAM architecture with an LCF CMA.
* :class:`SmallActiveCounters` — SAC, the main accuracy baseline.
* :class:`SampledCounters` / :class:`PerUnitSampledCounters` — fixed-rate
  sampling and its E1/E2 byte extensions.
* :class:`Anls` / :class:`AnlsBytesNaive` / :class:`AnlsPerUnit` — ANLS and
  the ANLS-I / ANLS-II straw men from Tables III and IV.
* :class:`BrickCounters` / :class:`CounterBraids` / :class:`DiscoBrick` —
  the complementary variable-length architectures and the composition.
* :class:`IceBuckets` / :class:`AeeCounters` — beyond-the-paper
  comparators: per-bucket independent estimation scale (ICE Buckets)
  and constant-probability additive-error counting (AEE).
"""

from repro.counters.aee import AeeCounters
from repro.counters.anls import Anls, AnlsBytesNaive, AnlsPerUnit
from repro.counters.base import CountingScheme
from repro.counters.ice import IceBuckets
from repro.counters.brick import BrickCounters, BrickDesign
from repro.counters.cma import (
    CounterManagementAlgorithm,
    LargestCounterFirst,
    RoundRobin,
    ThresholdLcf,
    make_cma,
)
from repro.counters.combined import DiscoBrick
from repro.counters.countmin import CountMin, DiscoCountMin
from repro.counters.counterbraids import CounterBraids, DecodeResult, decode_layer
from repro.counters.exact import ExactCounters
from repro.counters.hardware import HardwareDiscoSketch
from repro.counters.netflow import NetflowRecordOut, SampledNetflow
from repro.counters.sac import SmallActiveCounters
from repro.counters.sampling import PerUnitSampledCounters, SampledCounters
from repro.counters.spacesaving import SpaceSaving
from repro.counters.sd import SdCounters

__all__ = [
    "CountingScheme",
    "ExactCounters",
    "SdCounters",
    "SmallActiveCounters",
    "SampledCounters",
    "PerUnitSampledCounters",
    "Anls",
    "AnlsBytesNaive",
    "AnlsPerUnit",
    "AeeCounters",
    "IceBuckets",
    "BrickCounters",
    "BrickDesign",
    "CounterBraids",
    "DecodeResult",
    "decode_layer",
    "DiscoBrick",
    "HardwareDiscoSketch",
    "CounterManagementAlgorithm",
    "LargestCounterFirst",
    "ThresholdLcf",
    "RoundRobin",
    "make_cma",
    "SampledNetflow",
    "NetflowRecordOut",
    "CountMin",
    "DiscoCountMin",
    "SpaceSaving",
]
