"""Fixed-rate packet sampling (NetFlow-style) and its byte extensions.

Sampling with rate ``p`` counts each packet with probability ``p``; the
unbiased flow-size estimate is ``c / p``.  Section II of the paper discusses
two ways to extend this to flow-volume counting:

* **E1** — add the sampled packet's *length* to the counter (estimate
  ``c / p``).  Unbiased, but the variance blows up with intra-flow
  packet-length variation; this is the failure mode Table III demonstrates
  for the ANLS analogue.
* **E2** — treat a packet of ``l`` bytes as ``l`` independent unit packets
  and run the Bernoulli trial ``l`` times.  Accuracy matches unit-packet
  sampling but per-packet cost is O(l); see
  :class:`repro.counters.anls.AnlsPerUnit` for the measured version.

:class:`SampledCounters` implements plain sampling for size mode and E1 for
volume mode (selected by the scheme's counting mode).  E2 for plain
sampling is :class:`PerUnitSampledCounters`.
"""

from __future__ import annotations

from typing import Hashable

from repro.counters.base import CountingScheme
from repro.core.disco import counter_bits
from repro.errors import ParameterError

__all__ = ["SampledCounters", "PerUnitSampledCounters"]


class SampledCounters(CountingScheme):
    """Classic fixed-probability packet sampling.

    In ``"size"`` mode each sampled packet adds 1 (standard sampled
    NetFlow); in ``"volume"`` mode each sampled packet adds its length
    (extension E1).  The estimator is ``counter / p`` in both cases.
    """

    name = "sampled"

    def __init__(self, probability: float, mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        if not (0.0 < probability <= 1.0):
            raise ParameterError(f"sampling probability must be in (0, 1], got {probability!r}")
        self.probability = probability

    def _update(self, flow: Hashable, amount: float) -> None:
        current = self._state.setdefault(flow, 0)
        if self._rng.random() < self.probability:
            self._state[flow] = current + int(amount)

    def estimate(self, flow: Hashable) -> float:
        return self._state.get(flow, 0) / self.probability

    def max_counter_bits(self) -> int:
        largest = max(self._state.values(), default=0)
        return counter_bits(int(largest))


class PerUnitSampledCounters(CountingScheme):
    """Extension E2: sample every *byte* independently.

    A packet of ``l`` bytes triggers ``l`` Bernoulli(``p``) trials; the
    counter adds the number of successes and the estimator is ``c / p``.
    Statistically identical to unit-packet sampling over the byte stream,
    but O(l) work per packet — the processing-cost objection from
    Section II.  The implementation uses a binomial draw, which is exact
    and keeps tests fast; :class:`~repro.counters.anls.AnlsPerUnit` keeps
    the naive loop because its *cost* is the measured quantity.
    """

    name = "sampled-per-unit"

    def __init__(self, probability: float, mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        if not (0.0 < probability <= 1.0):
            raise ParameterError(f"sampling probability must be in (0, 1], got {probability!r}")
        self.probability = probability

    def _update(self, flow: Hashable, amount: float) -> None:
        trials = int(amount)
        successes = sum(
            1 for _ in range(trials) if self._rng.random() < self.probability
        )
        self._state[flow] = self._state.get(flow, 0) + successes

    def estimate(self, flow: Hashable) -> float:
        return self._state.get(flow, 0) / self.probability

    def max_counter_bits(self) -> int:
        largest = max(self._state.values(), default=0)
        return counter_bits(int(largest))
