"""Space-Saving — the bounded-entry heavy-hitter structure.

Metwally, Agrawal & El Abbadi (ICDT 2005).  Where DISCO keeps one
(compressed) counter per flow, Space-Saving keeps only ``k`` entries and
*reassigns* the minimum entry to each unmatched arrival, inheriting its
count.  Guarantees: every flow with true total above ``TOTAL / k`` is in
the table, and each entry overestimates its flow by at most the minimum
counter (tracked per entry as ``error``).

Included as the canonical alternative for the heavy-hitter application
(`repro.apps.heavyhitters` rides a full DISCO sketch instead): the bench
trade is k entries of exact-ish top-k versus per-flow estimates for
*every* flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.counters.base import CountingScheme
from repro.core.disco import counter_bits
from repro.errors import ParameterError

__all__ = ["SpaceSaving"]


@dataclass
class _Entry:
    count: int
    error: int  # upper bound on overestimation inherited at takeover


class SpaceSaving(CountingScheme):
    """Space-Saving with ``capacity`` monitored entries.

    ``estimate`` returns the entry count (an upper bound on the flow's
    true total) or 0 for unmonitored flows; ``guaranteed(flow)`` returns
    the lower bound ``count - error``.
    """

    name = "space-saving"

    def __init__(self, capacity: int, mode: str = "volume", rng=None) -> None:
        super().__init__(mode=mode, rng=rng)
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._state: Dict[Hashable, _Entry] = {}
        self.total = 0
        self.takeovers = 0

    def _update(self, flow: Hashable, amount: float) -> None:
        increment = int(amount)
        self.total += increment
        entry = self._state.get(flow)
        if entry is not None:
            entry.count += increment
            return
        if len(self._state) < self.capacity:
            self._state[flow] = _Entry(count=increment, error=0)
            return
        # Take over the minimum entry: inherit its count as error bound.
        victim = min(self._state, key=lambda f: self._state[f].count)
        inherited = self._state.pop(victim).count
        self._state[flow] = _Entry(count=inherited + increment, error=inherited)
        self.takeovers += 1

    def estimate(self, flow: Hashable) -> float:
        entry = self._state.get(flow)
        return float(entry.count) if entry is not None else 0.0

    def guaranteed(self, flow: Hashable) -> float:
        """Lower bound on the flow's true total (0 if unmonitored)."""
        entry = self._state.get(flow)
        return float(entry.count - entry.error) if entry is not None else 0.0

    def top_k(self, k: int) -> List[Tuple[Hashable, float]]:
        """The k largest monitored entries by count, descending."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k!r}")
        ranked = sorted(self._state.items(), key=lambda kv: kv[1].count,
                        reverse=True)
        return [(flow, float(entry.count)) for flow, entry in ranked[:k]]

    def error_bound(self) -> float:
        """Worst-case overestimation: TOTAL / capacity (the classic bound)."""
        return self.total / self.capacity

    def max_counter_bits(self) -> int:
        largest = max((e.count for e in self._state.values()), default=0)
        return counter_bits(largest)

    def memory_entries(self) -> int:
        return self.capacity

    def reset(self) -> None:
        super().reset()
        self.total = 0
        self.takeovers = 0
