"""Arrival-time models: turn a packet sequence into a timed arrival process.

The throughput experiments (Table V) run at saturation, but the ring
stability analysis (:mod:`repro.ixp.ring`) and latency questions need
*when* packets arrive.  This module provides the standard models:

* **constant-rate** — back-to-back at a line rate (what the paper's TGEN
  produces);
* **Poisson** — exponential inter-arrivals at a mean rate;
* **on-off (MMPP-2)** — bursty traffic alternating between an ON state
  (transmitting at peak rate) and silent OFF periods, the classic model
  for self-similar-ish backbone load.

All models are seedable and yield ``(timestamp_ns, flow, length)``.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Tuple, Union

from repro.errors import ParameterError

__all__ = ["constant_rate", "poisson", "on_off"]

TimedPacket = Tuple[float, object, int]


def _as_rng(rng: Union[None, int, random.Random]) -> random.Random:
    return rng if isinstance(rng, random.Random) else random.Random(rng)


def constant_rate(
    packets: Iterable[Tuple[object, int]],
    gbps: float,
) -> Iterator[TimedPacket]:
    """Packets arrive back-to-back at the line rate ``gbps``.

    A packet's timestamp is when its *last* byte arrives — the moment the
    monitor can process it.
    """
    if not (gbps > 0):
        raise ParameterError(f"gbps must be > 0, got {gbps!r}")
    ns_per_byte = 8.0 / gbps
    now = 0.0
    for flow, length in packets:
        now += length * ns_per_byte
        yield now, flow, length


def poisson(
    packets: Iterable[Tuple[object, int]],
    mean_pps: float,
    rng: Union[None, int, random.Random] = None,
) -> Iterator[TimedPacket]:
    """Poisson arrivals at ``mean_pps`` packets per second."""
    if not (mean_pps > 0):
        raise ParameterError(f"mean_pps must be > 0, got {mean_pps!r}")
    rand = _as_rng(rng)
    mean_gap_ns = 1e9 / mean_pps
    now = 0.0
    for flow, length in packets:
        now += rand.expovariate(1.0 / mean_gap_ns)
        yield now, flow, length


def on_off(
    packets: Iterable[Tuple[object, int]],
    peak_gbps: float,
    mean_on_ns: float,
    mean_off_ns: float,
    rng: Union[None, int, random.Random] = None,
) -> Iterator[TimedPacket]:
    """Two-state on-off arrivals.

    During an ON period (exponential, mean ``mean_on_ns``) packets flow
    back-to-back at ``peak_gbps``; OFF periods (exponential, mean
    ``mean_off_ns``) are silent.  The long-run average rate is
    ``peak_gbps * on / (on + off)``.
    """
    if not (peak_gbps > 0):
        raise ParameterError(f"peak_gbps must be > 0, got {peak_gbps!r}")
    if not (mean_on_ns > 0) or not (mean_off_ns >= 0):
        raise ParameterError("mean_on_ns must be > 0 and mean_off_ns >= 0")
    rand = _as_rng(rng)
    ns_per_byte = 8.0 / peak_gbps
    now = 0.0
    on_remaining = rand.expovariate(1.0 / mean_on_ns)
    for flow, length in packets:
        transmit = length * ns_per_byte
        while transmit > on_remaining:
            # The ON period ends mid-packet: the residual transmits after
            # the OFF gap (store-and-forward at the source).
            transmit -= on_remaining
            now += on_remaining
            if mean_off_ns > 0:
                now += rand.expovariate(1.0 / mean_off_ns)
            on_remaining = rand.expovariate(1.0 / mean_on_ns)
        on_remaining -= transmit
        now += transmit
        yield now, flow, length
