"""Generators for the paper's three synthetic traffic scenarios.

Section V-B:

* **Scenario 1** — flow sizes Pareto(shape 1.053, scale 4); packet lengths
  truncated-exponential(100) on [40, 1500].  Reported averages: 48.99
  packets and 5.2 KB per flow.
* **Scenario 2** — flow sizes Exponential(mean 800); same lengths.
  Reported: 778.30 packets, 82.7 KB.
* **Scenario 3** — flow sizes Uniform[2, 1600]; same lengths.
  Reported: 772.01 packets, 83.6 KB.

The paper does not state the flow count for the synthetic traces; the
default of 1000 flows keeps the reported per-flow averages stable while
staying replayable in pure Python.  All generators are deterministic given
a seed.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro.errors import ParameterError
from repro.traces.distributions import (
    Exponential,
    Pareto,
    Sampler,
    TruncatedExponential,
    UniformInt,
)
from repro.traces.trace import Trace

__all__ = [
    "generate_flows",
    "scenario1",
    "scenario2",
    "scenario3",
    "packet_length_sampler",
]


def packet_length_sampler() -> TruncatedExponential:
    """The shared packet-length law of all three scenarios."""
    return TruncatedExponential(scale=100.0, low=40, high=1500)


def generate_flows(
    num_flows: int,
    flow_size_sampler: Sampler,
    length_sampler: Sampler,
    rng: Union[None, int, random.Random] = None,
    name: str = "synthetic",
    max_flow_packets: Optional[int] = None,
) -> Trace:
    """Draw ``num_flows`` flows: a size from one law, lengths from another.

    ``max_flow_packets`` optionally caps flow sizes — Pareto(1.053) has an
    infinite mean, and an occasional million-packet flow would dominate a
    pure-Python replay without changing any per-flow error statistic.  The
    cap is recorded in the trace name when it triggers.
    """
    if num_flows < 1:
        raise ParameterError(f"num_flows must be >= 1, got {num_flows!r}")
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    flows = {}
    capped = False
    for flow_id in range(num_flows):
        size = flow_size_sampler(rand)
        if max_flow_packets is not None and size > max_flow_packets:
            size = max_flow_packets
            capped = True
        flows[flow_id] = [length_sampler(rand) for _ in range(size)]
    if capped:
        name = f"{name}:capped{max_flow_packets}"
    return Trace(flows, name=name)


def scenario1(
    num_flows: int = 1000,
    rng: Union[None, int, random.Random] = None,
    max_flow_packets: Optional[int] = 100_000,
) -> Trace:
    """Scenario 1: Pareto(1.053, 4) flow sizes, truncated-exp lengths."""
    return generate_flows(
        num_flows,
        Pareto(shape=1.053, scale=4.0),
        packet_length_sampler(),
        rng=rng,
        name="scenario1",
        max_flow_packets=max_flow_packets,
    )


def scenario2(
    num_flows: int = 1000,
    rng: Union[None, int, random.Random] = None,
) -> Trace:
    """Scenario 2: Exponential(mean 800) flow sizes, truncated-exp lengths."""
    return generate_flows(
        num_flows,
        Exponential(mean=800.0),
        packet_length_sampler(),
        rng=rng,
        name="scenario2",
    )


def scenario3(
    num_flows: int = 1000,
    rng: Union[None, int, random.Random] = None,
) -> Trace:
    """Scenario 3: Uniform[2, 1600] flow sizes, truncated-exp lengths."""
    return generate_flows(
        num_flows,
        UniformInt(2, 1600),
        packet_length_sampler(),
        rng=rng,
        name="scenario3",
    )
