"""The in-memory trace representation used by every experiment.

A :class:`Trace` is a mapping from flow ID to that flow's packet-length
sequence, plus helpers for the statistics the paper reports about its
traces (flow counts, average flow size/volume, intra-flow packet-length
variance — the quantity Table III blames for ANLS-I's failure) and for
replaying the packets in different arrival orders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from repro.errors import ParameterError
from repro.flows.packet import FlowKey, Packet

__all__ = ["Trace", "TraceStats"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics in the shape the paper reports them.

    ``length_variance_over_10_fraction`` is the fraction of flows whose
    intra-flow packet-length variance exceeds 10 (Table III's predictor of
    ANLS-I failure); ``mean_length_variance`` is its mean over flows.
    """

    num_flows: int
    num_packets: int
    total_bytes: int
    mean_flow_packets: float
    mean_flow_bytes: float
    mean_packet_length: float
    length_variance_over_10_fraction: float
    mean_length_variance: float


class Trace:
    """A set of flows with their packet-length sequences.

    Parameters
    ----------
    flows:
        Mapping of flow key to sequence of packet lengths (bytes).
    name:
        Label used in experiment reports.
    """

    def __init__(self, flows: Dict[FlowKey, Sequence[int]], name: str = "trace") -> None:
        for flow, lengths in flows.items():
            if not lengths:
                raise ParameterError(f"flow {flow!r} has no packets")
        self.flows: Dict[FlowKey, List[int]] = {f: list(ls) for f, ls in flows.items()}
        self.name = name

    # -- truth -------------------------------------------------------------

    def true_size(self, flow: FlowKey) -> int:
        """Number of packets in the flow."""
        return len(self.flows[flow])

    def true_volume(self, flow: FlowKey) -> int:
        """Number of bytes in the flow."""
        return sum(self.flows[flow])

    def true_totals(self, mode: str) -> Dict[FlowKey, int]:
        """Per-flow ground truth for the given counting mode."""
        if mode == "size":
            return {f: len(ls) for f, ls in self.flows.items()}
        if mode == "volume":
            return {f: sum(ls) for f, ls in self.flows.items()}
        raise ParameterError(f"mode must be 'size' or 'volume', got {mode!r}")

    def __len__(self) -> int:
        return len(self.flows)

    def __contains__(self, flow: FlowKey) -> bool:
        return flow in self.flows

    @property
    def num_packets(self) -> int:
        return sum(len(ls) for ls in self.flows.values())

    # -- replay --------------------------------------------------------------

    def packets(
        self,
        order: str = "shuffled",
        rng: Union[None, int, random.Random] = None,
    ) -> Iterator[Packet]:
        """Yield the trace's packets as :class:`~repro.flows.Packet`.

        ``order`` controls interleaving across flows:

        * ``"shuffled"`` — uniformly random global order (burst length 1 in
          expectation, matching the paper's non-bursty arrival pattern);
        * ``"sequential"`` — all packets of a flow back-to-back (maximum
          burstiness; exercises burst aggregation);
        * ``"asis"`` — the trace's stored order, verbatim.  For this
          flow-keyed representation that coincides with ``"sequential"``,
          but it never buffers: packets stream straight out of the flow
          lists, which is what large replays want;
        * ``"roundrobin"`` — one packet per flow per round.
        """
        if order in ("sequential", "asis"):
            for flow, lengths in self.flows.items():
                for length in lengths:
                    yield Packet(flow=flow, length=length)
            return
        if order == "shuffled":
            rand = rng if isinstance(rng, random.Random) else random.Random(rng)
            pairs: List[Tuple[FlowKey, int]] = [
                (flow, length)
                for flow, lengths in self.flows.items()
                for length in lengths
            ]
            rand.shuffle(pairs)
            for flow, length in pairs:
                yield Packet(flow=flow, length=length)
            return
        if order == "roundrobin":
            iterators = {flow: iter(lengths) for flow, lengths in self.flows.items()}
            while iterators:
                exhausted = []
                for flow, it in iterators.items():
                    try:
                        yield Packet(flow=flow, length=next(it))
                    except StopIteration:
                        exhausted.append(flow)
                for flow in exhausted:
                    del iterators[flow]
            return
        raise ParameterError(
            f"order must be 'shuffled', 'sequential', 'asis' or 'roundrobin', "
            f"got {order!r}"
        )

    def packet_pairs(
        self, order: str = "shuffled", rng: Union[None, int, random.Random] = None
    ) -> Iterator[Tuple[FlowKey, int]]:
        """Like :meth:`packets` but yields bare ``(flow, length)`` tuples."""
        for packet in self.packets(order=order, rng=rng):
            yield packet.flow, packet.length

    def packet_chunks(
        self, chunk_packets: int, order: str = "asis",
        rng: Union[None, int, random.Random] = None,
    ) -> Iterator[List[Tuple[FlowKey, int]]]:
        """Yield ``(flow, length)`` pairs in lists of ``chunk_packets``.

        The incremental-consumption shape :meth:`StreamSession.extend
        <repro.streaming.StreamSession.extend>` wants: the whole trace
        never needs to materialise as one packet list.  Every chunk is
        full except possibly the last.
        """
        if chunk_packets < 1:
            raise ParameterError(
                f"chunk_packets must be >= 1, got {chunk_packets!r}")
        batch: List[Tuple[FlowKey, int]] = []
        for pair in self.packet_pairs(order=order, rng=rng):
            batch.append(pair)
            if len(batch) >= chunk_packets:
                yield batch
                batch = []
        if batch:
            yield batch

    # -- statistics ----------------------------------------------------------

    def length_variance(self, flow: FlowKey) -> float:
        """Population variance of the flow's packet lengths."""
        lengths = self.flows[flow]
        n = len(lengths)
        mean = sum(lengths) / n
        return sum((l - mean) ** 2 for l in lengths) / n

    def stats(self) -> TraceStats:
        num_flows = len(self.flows)
        num_packets = self.num_packets
        total_bytes = sum(sum(ls) for ls in self.flows.values())
        variances = [self.length_variance(f) for f in self.flows]
        over_10 = sum(1 for v in variances if v > 10.0)
        return TraceStats(
            num_flows=num_flows,
            num_packets=num_packets,
            total_bytes=total_bytes,
            mean_flow_packets=num_packets / num_flows if num_flows else 0.0,
            mean_flow_bytes=total_bytes / num_flows if num_flows else 0.0,
            mean_packet_length=total_bytes / num_packets if num_packets else 0.0,
            length_variance_over_10_fraction=over_10 / num_flows if num_flows else 0.0,
            mean_length_variance=sum(variances) / num_flows if num_flows else 0.0,
        )

    def subsample(self, num_flows: int, rng: Union[None, int, random.Random] = None) -> "Trace":
        """A new trace containing a uniform sample of the flows."""
        if num_flows >= len(self.flows):
            return Trace(dict(self.flows), name=self.name)
        rand = rng if isinstance(rng, random.Random) else random.Random(rng)
        chosen = rand.sample(list(self.flows), num_flows)
        return Trace({f: self.flows[f] for f in chosen}, name=f"{self.name}:sub{num_flows}")

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, flows={len(self.flows)}, packets={self.num_packets})"
