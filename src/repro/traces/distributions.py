"""Seedable samplers for the distributions the evaluation section uses.

The three synthetic scenarios (Section V-B) combine:

* Pareto flow sizes (Scenario 1: shape 1.053, scale 4),
* exponential flow sizes (Scenario 2: mean 800),
* uniform flow sizes (Scenario 3: 2..1600),
* "truncated exponential" packet lengths between 40 and 1500 bytes with
  parameter 100.  The paper's reported per-flow byte averages (~106 bytes
  per packet) match the *clamped* interpretation — draw Exp(100) and clamp
  into [40, 1500] — rather than the conditional one (~140 bytes), so
  clamping is what :class:`TruncatedExponential` implements (the
  conditional variant is available as ``style="conditional"``).

Every sampler takes a ``random.Random`` and is a plain callable so trace
generators can be composed from them.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from repro.errors import ParameterError

__all__ = [
    "Pareto",
    "Exponential",
    "UniformInt",
    "TruncatedExponential",
    "Constant",
    "Sampler",
]

Sampler = Callable[[random.Random], int]


class Pareto:
    """Pareto(shape, scale) sampler rounded to a positive integer.

    Density ``f(x) = shape * scale^shape / x^(shape+1)`` for ``x >= scale``.
    """

    def __init__(self, shape: float, scale: float) -> None:
        if not (shape > 0) or not (scale > 0):
            raise ParameterError(f"Pareto needs shape, scale > 0, got {shape!r}, {scale!r}")
        self.shape = shape
        self.scale = scale

    def __call__(self, rng: random.Random) -> int:
        u = 1.0 - rng.random()  # in (0, 1]
        value = self.scale / (u ** (1.0 / self.shape))
        return max(1, int(round(value)))

    def __repr__(self) -> str:
        return f"Pareto(shape={self.shape}, scale={self.scale})"


class Exponential:
    """Exponential sampler with the given mean, rounded up to >= 1."""

    def __init__(self, mean: float) -> None:
        if not (mean > 0):
            raise ParameterError(f"Exponential needs mean > 0, got {mean!r}")
        self.mean = mean

    def __call__(self, rng: random.Random) -> int:
        return max(1, int(round(rng.expovariate(1.0 / self.mean))))

    def __repr__(self) -> str:
        return f"Exponential(mean={self.mean})"


class UniformInt:
    """Uniform integer sampler on ``[low, high]`` inclusive."""

    def __init__(self, low: int, high: int) -> None:
        if low > high:
            raise ParameterError(f"need low <= high, got {low!r} > {high!r}")
        if low < 1:
            raise ParameterError(f"low must be >= 1, got {low!r}")
        self.low = low
        self.high = high

    def __call__(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformInt({self.low}, {self.high})"


class TruncatedExponential:
    """Exponential(scale) restricted to ``[low, high]``.

    ``style="clamp"`` (default, matches the paper's summary statistics)
    clamps out-of-range draws to the boundary; ``style="conditional"``
    redraws until the value falls inside the interval.
    """

    def __init__(self, scale: float, low: int = 40, high: int = 1500,
                 style: str = "clamp") -> None:
        if not (scale > 0):
            raise ParameterError(f"scale must be > 0, got {scale!r}")
        if not (0 < low <= high):
            raise ParameterError(f"need 0 < low <= high, got {low!r}, {high!r}")
        if style not in ("clamp", "conditional"):
            raise ParameterError(f"style must be 'clamp' or 'conditional', got {style!r}")
        self.scale = scale
        self.low = low
        self.high = high
        self.style = style

    def __call__(self, rng: random.Random) -> int:
        if self.style == "clamp":
            value = rng.expovariate(1.0 / self.scale)
            return int(round(min(self.high, max(self.low, value))))
        while True:
            value = rng.expovariate(1.0 / self.scale)
            if self.low <= value <= self.high:
                return int(round(value))

    def mean(self) -> float:
        """Analytic mean of the clamped variant (used in tests)."""
        lam = 1.0 / self.scale
        lo, hi = float(self.low), float(self.high)
        # E[clamp(X)] = lo*P(X<lo) + E[X; lo<=X<=hi] + hi*P(X>hi)
        p_lo = 1.0 - math.exp(-lam * lo)
        p_hi = math.exp(-lam * hi)
        mid = (lo + self.scale) * math.exp(-lam * lo) - (hi + self.scale) * math.exp(-lam * hi)
        return lo * p_lo + mid + hi * p_hi

    def __repr__(self) -> str:
        return (
            f"TruncatedExponential(scale={self.scale}, low={self.low}, "
            f"high={self.high}, style={self.style!r})"
        )


class Constant:
    """Degenerate sampler (used for fixed-length packet streams)."""

    def __init__(self, value: int) -> None:
        if value < 1:
            raise ParameterError(f"value must be >= 1, got {value!r}")
        self.value = value

    def __call__(self, rng: random.Random) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value})"
