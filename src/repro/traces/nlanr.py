"""NLANR-like synthetic backbone trace.

The paper's "real trace" is an NLANR PMA capture of an OC-192 link: 100,728
flows, 40 GB of traffic (mean flow volume 409.5 KB), with packet-length
variance above 10 for 62.78% of flows and a mean per-flow length variance of
1e3-1e4.  The PMA archive is long gone, so this module synthesises a trace
that matches those *published summary statistics* — which are the only
properties the evaluation actually exercises:

* flow volumes are heavy-tailed (Pareto), matching the Internet's
  elephant/mice split;
* packet lengths within a flow follow one of three empirical profiles:

  - ``constant`` — every packet the same size (pure-ACK streams, constant
    RTP, DNS trains): zero length variance, calibrated to the paper's
    ~37% of flows with variance <= 10;
  - ``bimodal`` — a data/ACK mix of 1500-byte and 40-byte packets, the
    dominant TCP pattern and the source of the 1e3-1e4 variance magnitudes;
  - ``jittered`` — a base length with bounded jitter (tunnelled or padded
    traffic): moderate variance.

The default scale is laptop-sized; pass ``num_flows``/``mean_flow_bytes``
to approach the original capture's scale.
"""

from __future__ import annotations

import random
from typing import List, Union

from repro.errors import ParameterError
from repro.traces.trace import Trace

__all__ = ["nlanr_like", "NLANR_PROFILE_MIX"]

#: Fraction of flows drawn from each packet-length profile.  ``constant``
#: is calibrated to the paper's 37.22% of flows with length variance <= 10.
NLANR_PROFILE_MIX = {"constant": 0.3722, "bimodal": 0.45, "jittered": 0.1778}

_CONSTANT_LENGTH_CHOICES = (40, 52, 64, 90, 576, 1500)
_JITTER_BASE_CHOICES = (120, 300, 576, 900, 1300)


def _profile_lengths(
    profile: str, volume: int, rand: random.Random
) -> List[int]:
    """Draw packet lengths for one flow until they cover ``volume`` bytes."""
    lengths: List[int] = []
    total = 0
    if profile == "constant":
        size = rand.choice(_CONSTANT_LENGTH_CHOICES)
        while total < volume:
            lengths.append(size)
            total += size
        return lengths
    if profile == "bimodal":
        data_fraction = rand.uniform(0.3, 0.9)
        while total < volume:
            size = 1500 if rand.random() < data_fraction else 40
            lengths.append(size)
            total += size
        return lengths
    if profile == "jittered":
        base = rand.choice(_JITTER_BASE_CHOICES)
        jitter = max(4, base // 8)
        while total < volume:
            size = base + rand.randint(-jitter, jitter)
            size = max(40, min(1500, size))
            lengths.append(size)
            total += size
        return lengths
    raise ParameterError(f"unknown profile {profile!r}")


def nlanr_like(
    num_flows: int = 500,
    mean_flow_bytes: float = 40_000.0,
    pareto_shape: float = 1.2,
    rng: Union[None, int, random.Random] = None,
    max_flow_bytes: float = 50_000_000.0,
) -> Trace:
    """Synthesize an NLANR-OC192-like trace.

    Parameters
    ----------
    num_flows:
        Flows to generate.  The original capture has 100,728; the default
        of 500 keeps per-experiment replay to tens of thousands of packets
        while leaving per-flow error statistics stable.
    mean_flow_bytes:
        Target mean flow volume.  The original is 409.5 KB; the default is
        scaled down ~10x, which scales every counter value but none of the
        relative-error comparisons (``b`` is always chosen from the actual
        maximum volume).
    pareto_shape:
        Tail index of the flow-volume distribution (>1 so the mean exists).
    max_flow_bytes:
        Cap on a single flow's volume, to bound worst-case replay time.
    """
    if num_flows < 1:
        raise ParameterError(f"num_flows must be >= 1, got {num_flows!r}")
    if not (pareto_shape > 1.0):
        raise ParameterError(f"pareto_shape must be > 1, got {pareto_shape!r}")
    if not (mean_flow_bytes >= 40):
        raise ParameterError(f"mean_flow_bytes must be >= 40, got {mean_flow_bytes!r}")
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    scale = mean_flow_bytes * (pareto_shape - 1.0) / pareto_shape

    profiles = list(NLANR_PROFILE_MIX)
    weights = [NLANR_PROFILE_MIX[p] for p in profiles]

    flows = {}
    for flow_id in range(num_flows):
        u = 1.0 - rand.random()
        volume = scale / (u ** (1.0 / pareto_shape))
        volume = int(min(max(volume, 40.0), max_flow_bytes))
        profile = rand.choices(profiles, weights=weights, k=1)[0]
        flows[flow_id] = _profile_lengths(profile, volume, rand)
    return Trace(flows, name="nlanr-like")
