"""Public trace registry: build any workload from a name.

The CLI, the benchmarks and the scenario-matrix harness all construct
workloads from configuration — a string name plus keyword parameters —
exactly the shape :mod:`repro.schemes` already solved for counting
schemes.  This module is the same registry pattern for traces:

``make_trace(name, **params)``
    Build a fresh workload.  Unknown names and unknown parameters raise
    :class:`~repro.errors.ParameterError` listing the valid choices.

``trace_factory(name, **params)``
    Return a :class:`TraceFactory` — a frozen, picklable zero-argument
    callable that defers ``make_trace``.  Name and parameters are
    validated eagerly (against the builder's signature), so a bad recipe
    fails at configuration time, not inside a worker process; the
    build itself is deferred because workloads can be large.

``trace_names()`` / ``trace_spec(name)``
    Introspection over the registered :class:`TraceSpec` entries.

Builders share one keyword vocabulary (``num_flows``, ``seed``) so
callers can pass a uniform parameter set; each family adds its own
extras (``mean_flow_bytes``, ``epochs``, ``alpha``, ...).  Most names
build a :class:`~repro.traces.trace.Trace`; ``big`` builds the
chunk-only :class:`~repro.traces.toolkit.BigTrace`, which only the
streaming paths accept (its spec says so via ``streaming_only``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ParameterError

__all__ = [
    "TraceSpec",
    "TraceFactory",
    "make_trace",
    "trace_factory",
    "trace_names",
    "trace_spec",
    "register_trace",
]


@dataclass(frozen=True)
class TraceSpec:
    """One registry entry: how to build a workload family by name."""

    name: str
    summary: str
    builder: Callable[..., object]
    defaults: Mapping[str, object] = field(default_factory=dict)
    #: True for workloads that never materialise a Trace (chunk-only);
    #: the one-shot replay paths reject these, streaming accepts them.
    streaming_only: bool = False


_TRACES: Dict[str, TraceSpec] = {}


def register_trace(spec: TraceSpec) -> TraceSpec:
    """Add ``spec`` to the registry (duplicate names are an error)."""
    if spec.name in _TRACES:
        raise ParameterError(f"trace {spec.name!r} is already registered")
    _TRACES[spec.name] = spec
    return spec


def trace_names() -> Tuple[str, ...]:
    """Registered trace names, sorted."""
    return tuple(sorted(_TRACES))


def trace_spec(name: str) -> TraceSpec:
    """Look up one :class:`TraceSpec`; unknown names raise."""
    spec = _TRACES.get(name)
    if spec is None:
        raise ParameterError(
            f"unknown trace {name!r}; choose from {', '.join(trace_names())}"
        )
    return spec


def _validate_params(spec: TraceSpec, params: Mapping[str, object]) -> None:
    """Reject unknown keywords against the builder's signature, eagerly."""
    try:
        inspect.signature(spec.builder).bind(**params)
    except TypeError as exc:
        raise ParameterError(
            f"bad parameters for trace {spec.name!r}: {exc}") from None


def make_trace(name: str, **params):
    """Build a fresh workload for ``name``.

    ``params`` override the spec's defaults; unknown parameters raise
    :class:`~repro.errors.ParameterError` rather than ``TypeError`` so
    every rejection out of this module reads the same way.
    """
    spec = trace_spec(name)
    merged = dict(spec.defaults)
    merged.update(params)
    try:
        return spec.builder(**merged)
    except TypeError as exc:
        raise ParameterError(
            f"bad parameters for trace {name!r}: {exc}") from None


@dataclass(frozen=True)
class TraceFactory:
    """Picklable zero-argument trace factory (``name`` + frozen params).

    Calling the factory is ``make_trace(name, **dict(params))``; both
    fields are plain data, so instances survive ``pickle`` across
    process pools and inside checkpoints.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __call__(self):
        return make_trace(self.name, **dict(self.params))


def trace_factory(name: str, **params) -> TraceFactory:
    """Build a :class:`TraceFactory`, validating name and params eagerly.

    Unlike :func:`repro.schemes.scheme_factory` the factory is *not*
    exercised here — workloads can run to millions of packets — but the
    name is resolved and the parameter set is bound against the
    builder's signature, so the classic misconfigurations (typo'd trace
    name, typo'd keyword) still fail at configuration time.
    """
    spec = trace_spec(name)
    merged = dict(spec.defaults)
    merged.update(params)
    _validate_params(spec, merged)
    return TraceFactory(
        name, tuple(sorted(params.items(), key=lambda kv: kv[0])))


# -- builders ------------------------------------------------------------------
#
# Thin adapters over the generator modules: they translate the shared
# ``seed`` keyword onto each generator's ``rng``/``seed`` argument and
# pin the registry-level defaults.


def _build_scenario1(num_flows: int = 1000, seed=None,
                     max_flow_packets: Optional[int] = 100_000):
    from repro.traces.synthetic import scenario1

    return scenario1(num_flows=num_flows, rng=seed,
                     max_flow_packets=max_flow_packets)


def _build_scenario2(num_flows: int = 1000, seed=None):
    from repro.traces.synthetic import scenario2

    return scenario2(num_flows=num_flows, rng=seed)


def _build_scenario3(num_flows: int = 1000, seed=None):
    from repro.traces.synthetic import scenario3

    return scenario3(num_flows=num_flows, rng=seed)


def _build_nlanr(num_flows: int = 500, mean_flow_bytes: float = 40_000.0,
                 pareto_shape: float = 1.2, max_flow_bytes: float = 50_000_000.0,
                 seed=None):
    from repro.traces.nlanr import nlanr_like

    return nlanr_like(num_flows=num_flows, mean_flow_bytes=mean_flow_bytes,
                      pareto_shape=pareto_shape, max_flow_bytes=max_flow_bytes,
                      rng=seed)


def _build_zipf(num_packets: int = 20_000, num_flows: int = 200,
                alpha: float = 1.0, min_length: int = 40,
                max_length: int = 1500, seed=None):
    from repro.traces.zipf import zipf_trace

    return zipf_trace(num_packets=num_packets, num_flows=num_flows,
                      alpha=alpha, min_length=min_length,
                      max_length=max_length, rng=seed)


def _build_churn(epochs: int = 8, flows_per_epoch: int = 120,
                 lifetime: int = 2, mean_flow_packets: float = 32.0,
                 seed=None):
    from repro.traces.toolkit import churn_trace

    return churn_trace(epochs=epochs, flows_per_epoch=flows_per_epoch,
                       lifetime=lifetime,
                       mean_flow_packets=mean_flow_packets, rng=seed)


def _build_adversarial(num_elephants: int = 32, elephant_packets: int = 2048,
                       num_mice: int = 256, mice_packets: int = 4,
                       ramp_flows: int = 12, ramp_start: float = 4.0,
                       ramp_factor: float = 2.0, seed=None):
    from repro.traces.toolkit import adversarial_trace

    return adversarial_trace(
        num_elephants=num_elephants, elephant_packets=elephant_packets,
        num_mice=num_mice, mice_packets=mice_packets, ramp_flows=ramp_flows,
        ramp_start=ramp_start, ramp_factor=ramp_factor, rng=seed)


def _build_burst(num_flows: int = 160, mean_bursts: float = 4.0,
                 mean_burst_packets: float = 32.0, peak_length: int = 1500,
                 idle_length: int = 40, seed=None):
    from repro.traces.toolkit import bursty_trace

    return bursty_trace(num_flows=num_flows, mean_bursts=mean_bursts,
                        mean_burst_packets=mean_burst_packets,
                        peak_length=peak_length, idle_length=idle_length,
                        rng=seed)


def _build_big(num_flows: int = 100_000, mean_flow_packets: float = 40.0,
               pareto_shape: float = 1.2, seed: Optional[int] = 0,
               segment_flows: int = 8192, max_flow_packets: int = 50_000):
    from repro.traces.toolkit import big_trace

    return big_trace(num_flows=num_flows, mean_flow_packets=mean_flow_packets,
                     pareto_shape=pareto_shape, seed=seed,
                     segment_flows=segment_flows,
                     max_flow_packets=max_flow_packets)


register_trace(TraceSpec(
    "scenario1", "Pareto(1.053, 4) flow sizes (paper Scenario 1)",
    _build_scenario1))
register_trace(TraceSpec(
    "scenario2", "Exponential(mean 800) flow sizes (paper Scenario 2)",
    _build_scenario2))
register_trace(TraceSpec(
    "scenario3", "Uniform[2, 1600] flow sizes (paper Scenario 3)",
    _build_scenario3))
register_trace(TraceSpec(
    "nlanr", "NLANR-OC192-like heavy-tailed backbone trace", _build_nlanr))
register_trace(TraceSpec(
    "zipf", "Zipf-popularity packet stream materialised as a trace",
    _build_zipf))
register_trace(TraceSpec(
    "churn", "per-epoch flow cohorts arriving and departing", _build_churn))
register_trace(TraceSpec(
    "adversarial",
    "bucket-concentrated elephants + saturation ramp + mice",
    _build_adversarial))
register_trace(TraceSpec(
    "burst", "on/off bursty flows (peak trains + idle markers)",
    _build_burst))
register_trace(TraceSpec(
    "big", "chunk-only NLANR-class workload (100k+ flows, streaming only)",
    _build_big, streaming_only=True))
