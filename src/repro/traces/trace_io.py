"""Streaming trace file I/O.

A trace file is a UTF-8 text file with one packet per line::

    # disco-trace v1
    <flow_id>,<length>

Lines starting with ``#`` are comments; the first line carries the format
tag.  Files ending in ``.gz`` are transparently gzip-compressed.  The
format is deliberately trivial — it exists so experiments can persist and
share workloads, and so the replay path can stream packets without holding
a trace in memory.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

from repro.errors import TraceFormatError
from repro.traces.trace import Trace

__all__ = ["write_trace", "read_trace", "iter_trace_packets", "FORMAT_TAG"]

FORMAT_TAG = "# disco-trace v1"


def _open_text(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_trace(trace: Trace, path: Union[str, Path], order: str = "shuffled",
                seed: int = 0) -> int:
    """Write ``trace`` to ``path`` in replay order; returns packets written."""
    count = 0
    with _open_text(path, "w") as fh:
        fh.write(FORMAT_TAG + "\n")
        fh.write(f"# name={trace.name}\n")
        for flow, length in trace.packet_pairs(order=order, rng=seed):
            fh.write(f"{flow},{length}\n")
            count += 1
    return count


def iter_trace_packets(path: Union[str, Path]) -> Iterator[Tuple[str, int]]:
    """Stream ``(flow_id, length)`` pairs from a trace file.

    Flow IDs are returned as strings (they are opaque keys); lengths are
    validated positive integers.  Raises
    :class:`~repro.errors.TraceFormatError` on malformed input.
    """
    with _open_text(path, "r") as fh:
        first = fh.readline()
        if not first.startswith(FORMAT_TAG):
            raise TraceFormatError(
                f"{path}: missing format tag {FORMAT_TAG!r} (got {first[:40]!r})"
            )
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 2:
                raise TraceFormatError(f"{path}:{line_no}: expected 'flow,length', got {line!r}")
            flow, raw_length = parts
            try:
                length = int(raw_length)
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{line_no}: bad length {raw_length!r}") from exc
            if length <= 0:
                raise TraceFormatError(f"{path}:{line_no}: non-positive length {length}")
            yield flow, length


def read_trace(path: Union[str, Path], name: str = "") -> Trace:
    """Load a whole trace file into a :class:`Trace`.

    Packet order within each flow follows file order; cross-flow arrival
    order is not preserved by the in-memory representation (replay order is
    chosen at :meth:`Trace.packets` time).
    """
    flows: Dict[str, List[int]] = {}
    for flow, length in iter_trace_packets(path):
        flows.setdefault(flow, []).append(length)
    if not flows:
        raise TraceFormatError(f"{path}: trace contains no packets")
    return Trace(flows, name=name or Path(path).stem)
