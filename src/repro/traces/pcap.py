"""Minimal libpcap interop: export traces as .pcap, import .pcap as traces.

Real monitoring pipelines speak pcap.  This module writes classic
little-endian libpcap files (magic 0xA1B2C3D4, microsecond timestamps,
LINKTYPE_ETHERNET) synthesising Ethernet/IPv4/UDP framing around each
packet of a :class:`~repro.traces.trace.Trace`, and reads pcap files back
into traces keyed by the IPv4/UDP five-tuple.  Pure stdlib; no scapy.

Framing notes
-------------
* A flow's key is mapped deterministically to a synthetic five-tuple
  (10.x.y.z source derived from the flow's stable hash, fixed collector
  address, UDP).
* ``length`` in a Trace is the IP-payload-carrying wire length; frames
  shorter than the 42-byte Ethernet+IPv4+UDP header overhead are padded
  up to it (and recovered as their on-wire length when read back).
* Reading honours the per-record *original length* field, truncated
  captures (``snaplen``) included.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

from repro.errors import TraceFormatError
from repro.flows.hashing import stable_hash
from repro.traces.trace import Trace

__all__ = ["write_pcap", "read_pcap", "iter_pcap_packets", "HEADER_OVERHEAD"]

_MAGIC_US_LE = 0xA1B2C3D4
_GLOBAL = struct.Struct("<IHHiIII")
_RECORD = struct.Struct("<IIII")
_ETH = struct.Struct("!6s6sH")
_IPV4 = struct.Struct("!BBHHHBBH4s4s")
_UDP = struct.Struct("!HHHH")

#: Ethernet (14) + IPv4 (20) + UDP (8) bytes wrapped around each payload.
HEADER_OVERHEAD = _ETH.size + _IPV4.size + _UDP.size

_COLLECTOR_IP = bytes([10, 255, 0, 1])
_COLLECTOR_PORT = 4739  # IPFIX, for flavour
_SRC_MAC = b"\x02\x44\x49\x53\x43\x4f"  # locally administered, "DISCO"
_DST_MAC = b"\x02\x43\x4f\x4c\x4c\x30"


def _flow_endpoint(flow) -> Tuple[bytes, int]:
    """Deterministic (source IP, source port) for a flow key."""
    digest = stable_hash(flow)
    ip = bytes([10, (digest >> 16) & 0xFF, (digest >> 8) & 0xFF,
                digest & 0xFF])
    port = 1024 + ((digest >> 24) % 60000)
    return ip, port


def _ipv4_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _frame(flow, wire_length: int) -> bytes:
    """Synthesise one Ethernet/IPv4/UDP frame of ``wire_length`` bytes."""
    length = max(wire_length, HEADER_OVERHEAD)
    payload_len = length - HEADER_OVERHEAD
    src_ip, src_port = _flow_endpoint(flow)
    ip_total = _IPV4.size + _UDP.size + payload_len
    ip_header = _IPV4.pack(
        0x45, 0, ip_total, 0, 0, 64, 17, 0, src_ip, _COLLECTOR_IP
    )
    checksum = _ipv4_checksum(ip_header)
    ip_header = _IPV4.pack(
        0x45, 0, ip_total, 0, 0, 64, 17, checksum, src_ip, _COLLECTOR_IP
    )
    udp_header = _UDP.pack(src_port, _COLLECTOR_PORT,
                           _UDP.size + payload_len, 0)
    eth_header = _ETH.pack(_DST_MAC, _SRC_MAC, 0x0800)
    return eth_header + ip_header + udp_header + bytes(payload_len)


def write_pcap(
    trace: Trace,
    path: Union[str, Path],
    order: str = "shuffled",
    seed: int = 0,
    gbps: float = 10.0,
    snaplen: int = 96,
) -> int:
    """Write ``trace`` as a pcap file; returns packets written.

    Timestamps follow back-to-back arrival at ``gbps``; frames are
    truncated to ``snaplen`` on disk (headers survive; padding does not),
    with the true wire length recorded per pcap semantics.
    """
    if not (gbps > 0):
        raise TraceFormatError(f"gbps must be > 0, got {gbps!r}")
    if snaplen < HEADER_OVERHEAD:
        raise TraceFormatError(
            f"snaplen must cover the {HEADER_OVERHEAD}-byte headers"
        )
    ns_per_byte = 8.0 / gbps
    count = 0
    now_ns = 0.0
    with open(path, "wb") as fh:
        fh.write(_GLOBAL.pack(_MAGIC_US_LE, 2, 4, 0, 0, snaplen, 1))
        for flow, length in trace.packet_pairs(order=order, rng=seed):
            frame = _frame(flow, length)
            now_ns += len(frame) * ns_per_byte
            captured = frame[:snaplen]
            seconds, micros = divmod(int(now_ns / 1000), 1_000_000)
            fh.write(_RECORD.pack(seconds, micros, len(captured), len(frame)))
            fh.write(captured)
            count += 1
    return count


def iter_pcap_packets(
    path: Union[str, Path],
) -> Iterator[Tuple[Tuple[str, str, int, int, int], int, float]]:
    """Stream ``(five_tuple, wire_length, timestamp_s)`` from a pcap file.

    Non-IPv4 or non-UDP/TCP frames are skipped.  The five-tuple is
    ``(src_ip, dst_ip, src_port, dst_port, protocol)`` with dotted-quad
    strings.
    """
    with open(path, "rb") as fh:
        header = fh.read(_GLOBAL.size)
        if len(header) != _GLOBAL.size:
            raise TraceFormatError(f"{path}: truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic != _MAGIC_US_LE:
            raise TraceFormatError(f"{path}: unsupported pcap magic {magic:#x}")
        _, _, _, _, _, snaplen, linktype = _GLOBAL.unpack(header)
        if linktype != 1:
            raise TraceFormatError(f"{path}: only LINKTYPE_ETHERNET supported")
        while True:
            record = fh.read(_RECORD.size)
            if not record:
                return
            if len(record) != _RECORD.size:
                raise TraceFormatError(f"{path}: truncated record header")
            seconds, micros, captured_len, wire_len = _RECORD.unpack(record)
            data = fh.read(captured_len)
            if len(data) != captured_len:
                raise TraceFormatError(f"{path}: truncated packet data")
            if captured_len < _ETH.size + _IPV4.size:
                continue
            ethertype = struct.unpack("!H", data[12:14])[0]
            if ethertype != 0x0800:
                continue
            ip = data[_ETH.size:_ETH.size + _IPV4.size]
            version_ihl = ip[0]
            if version_ihl >> 4 != 4:
                continue
            ihl = (version_ihl & 0xF) * 4
            protocol = ip[9]
            src_ip = ".".join(str(b) for b in ip[12:16])
            dst_ip = ".".join(str(b) for b in ip[16:20])
            src_port = dst_port = 0
            if protocol in (6, 17):
                l4_offset = _ETH.size + ihl
                if captured_len >= l4_offset + 4:
                    src_port, dst_port = struct.unpack(
                        "!HH", data[l4_offset:l4_offset + 4]
                    )
            yield ((src_ip, dst_ip, src_port, dst_port, protocol),
                   wire_len, seconds + micros / 1e6)


def read_pcap(path: Union[str, Path], name: str = "") -> Trace:
    """Load a pcap into a :class:`Trace` keyed by five-tuple strings."""
    flows: Dict[str, List[int]] = {}
    for five_tuple, wire_len, _ in iter_pcap_packets(path):
        key = "{}:{}->{}:{}/{}".format(
            five_tuple[0], five_tuple[2], five_tuple[1], five_tuple[3],
            five_tuple[4],
        )
        flows.setdefault(key, []).append(wire_len)
    if not flows:
        raise TraceFormatError(f"{path}: no IPv4 packets found")
    return Trace(flows, name=name or Path(path).stem)
