"""Workload toolkit: composition, renormalisation and stress generators.

The paper's evaluation (Section V) rests on a handful of fixed scenarios;
the toolkit widens the field to the traffic shapes a deployed measurement
box actually faces:

``merge_traces`` / ``renormalize``
    Composition: union several traces under namespaced flow IDs, and
    rescale a workload to a target packets-per-second budget — the two
    eval-harness staples for building mixed scenarios out of existing
    generators.

``churn_trace``
    Flow churn: a fresh cohort of flows arrives every epoch and departs
    ``lifetime`` epochs later, so the live flow population turns over
    continuously — the flow-table growth/decay stressor.

``adversarial_trace``
    Counter-stressing traffic: runs of consecutive elephant flows (so
    arrival-order bucketed schemes like ICE Buckets concentrate them in
    the same buckets and upscale repeatedly), a geometric saturation
    ramp whose flow sizes cross every power-of-two counter word (AEE
    word saturation, SAC exponent escalation), and a bed of mouse flows
    that must stay accurate next to both.

``bursty_trace``
    On/off traffic: each flow is a train of back-to-back peak-size
    bursts separated by idle-marker packets.  Replay with
    ``order="sequential"`` (or stream the compiled form) to preserve
    burst adjacency.

``big_trace``
    An NLANR-like workload at 100k+ flows that never materialises a
    :class:`~repro.traces.trace.Trace`: it exists only as
    :class:`~repro.traces.compiled.CompiledTrace` segments generated on
    the fly, consumable solely through ``iter_chunks`` / streaming, so
    peak RSS stays bounded by one segment regardless of trace size.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ParameterError
from repro.traces.compiled import CompiledTrace, TraceChunk
from repro.traces.mixer import scale_volume
from repro.traces.nlanr import (
    NLANR_PROFILE_MIX,
    _CONSTANT_LENGTH_CHOICES,
    _JITTER_BASE_CHOICES,
)
from repro.traces.synthetic import packet_length_sampler
from repro.traces.trace import Trace

__all__ = [
    "merge_traces",
    "renormalize",
    "churn_trace",
    "adversarial_trace",
    "bursty_trace",
    "big_trace",
    "BigTrace",
]


def _as_rng(rng: Union[None, int, random.Random]) -> random.Random:
    return rng if isinstance(rng, random.Random) else random.Random(rng)


# -- composition ---------------------------------------------------------------


def merge_traces(traces: Sequence[Trace], namespace: bool = True,
                 name: Optional[str] = None) -> Trace:
    """Union several traces into one workload.

    With ``namespace=True`` (the default) every flow key is prefixed with
    its source index (``"0/flow"``, ``"1/flow"``, ...), so identically
    keyed flows from different sources never collide — the merged trace
    keeps one flow per source flow.  With ``namespace=False`` keys are
    taken verbatim and any collision raises
    :class:`~repro.errors.ParameterError`.
    """
    if not traces:
        raise ParameterError("at least one trace is required")
    flows: Dict[Hashable, List[int]] = {}
    for index, trace in enumerate(traces):
        for flow, lengths in trace.flows.items():
            key: Hashable = f"{index}/{flow}" if namespace else flow
            if key in flows:
                raise ParameterError(
                    f"flow key collision on {key!r}; pass namespace=True"
                )
            flows[key] = list(lengths)
    return Trace(flows, name=name or "+".join(t.name for t in traces))


def renormalize(trace: Trace, target_pps: float,
                duration: float = 1.0) -> Trace:
    """Rescale ``trace`` so it carries ``target_pps * duration`` packets.

    Every flow's packet list is repeated or thinned by the same factor
    (via :func:`~repro.traces.mixer.scale_volume`), so the flow-size
    *distribution shape* survives while the total packet budget lands on
    the target — the knob for replaying one workload at several offered
    loads.  Per-flow rounding keeps at least one packet per flow, so the
    realised total is approximate for factors near or below ``1 /
    mean_flow_packets``.
    """
    if not (target_pps > 0):
        raise ParameterError(f"target_pps must be > 0, got {target_pps!r}")
    if not (duration > 0):
        raise ParameterError(f"duration must be > 0, got {duration!r}")
    total = sum(len(lengths) for lengths in trace.flows.values())
    target = max(1.0, target_pps * duration)
    scaled = scale_volume(trace, target / total)
    return Trace(scaled.flows,
                 name=f"{trace.name}@{target_pps:g}pps")


# -- stress generators ---------------------------------------------------------


def churn_trace(
    epochs: int = 8,
    flows_per_epoch: int = 120,
    lifetime: int = 2,
    mean_flow_packets: float = 32.0,
    rng: Union[None, int, random.Random] = None,
) -> Trace:
    """Flow churn: per-epoch cohorts of flows that arrive and depart.

    Epoch ``e`` spawns ``flows_per_epoch`` flows keyed
    ``"churn/e<e>/f<i>"``; each lives ``min(lifetime, epochs - e)``
    epochs and carries an independent exponential packet budget per live
    epoch.  The live population turns over continuously — short-lived
    cohorts dominate the flow *count* while long totals stay bounded —
    which is the flow-table arrival/departure stressor the fixed
    scenarios never produce.
    """
    if epochs < 1:
        raise ParameterError(f"epochs must be >= 1, got {epochs!r}")
    if flows_per_epoch < 1:
        raise ParameterError(
            f"flows_per_epoch must be >= 1, got {flows_per_epoch!r}")
    if lifetime < 1:
        raise ParameterError(f"lifetime must be >= 1, got {lifetime!r}")
    if not (mean_flow_packets >= 1):
        raise ParameterError(
            f"mean_flow_packets must be >= 1, got {mean_flow_packets!r}")
    rand = _as_rng(rng)
    length_sampler = packet_length_sampler()
    flows: Dict[Hashable, List[int]] = {}
    for epoch in range(epochs):
        live = min(lifetime, epochs - epoch)
        for i in range(flows_per_epoch):
            size = 0
            for _ in range(live):
                size += 1 + int(rand.expovariate(1.0 / mean_flow_packets))
            flows[f"churn/e{epoch}/f{i}"] = [
                length_sampler(rand) for _ in range(size)
            ]
    return Trace(flows, name=f"churn(e={epochs},f={flows_per_epoch})")


def adversarial_trace(
    num_elephants: int = 32,
    elephant_packets: int = 2048,
    num_mice: int = 256,
    mice_packets: int = 4,
    ramp_flows: int = 12,
    ramp_start: float = 4.0,
    ramp_factor: float = 2.0,
    rng: Union[None, int, random.Random] = None,
) -> Trace:
    """Counter-stressing traffic aimed at the comparators' failure modes.

    Three flow populations:

    * **elephants** — ``num_elephants`` consecutive flows of
      ``elephant_packets`` 1500-byte packets.  Under sequential /
      compiled-order replay they arrive back to back, so arrival-order
      bucketed schemes (ICE Buckets) pack whole buckets with elephants
      and must upscale repeatedly instead of isolating one.
    * **saturation ramp** — flow ``k`` carries about ``ramp_start *
      ramp_factor**k`` packets, crossing every power-of-two counter
      word along the way: the probe for AEE word saturation and SAC
      exponent escalation.
    * **mice** — tiny ACK-sized flows that must stay accurate while the
      elephants coarsen shared state around them.
    """
    if num_elephants < 0 or num_mice < 0 or ramp_flows < 0:
        raise ParameterError("flow counts must be >= 0")
    if num_elephants + num_mice + ramp_flows < 1:
        raise ParameterError("at least one flow is required")
    if elephant_packets < 1 or mice_packets < 1:
        raise ParameterError("per-flow packet counts must be >= 1")
    if not (ramp_start >= 1):
        raise ParameterError(f"ramp_start must be >= 1, got {ramp_start!r}")
    if not (ramp_factor > 1):
        raise ParameterError(f"ramp_factor must be > 1, got {ramp_factor!r}")
    rand = _as_rng(rng)
    flows: Dict[Hashable, List[int]] = {}
    for i in range(num_elephants):
        flows[f"adv/ele/{i}"] = [1500] * elephant_packets
    size = ramp_start
    for k in range(ramp_flows):
        flows[f"adv/ramp/{k}"] = [1500] * max(1, int(round(size)))
        size *= ramp_factor
    for i in range(num_mice):
        flows[f"adv/mouse/{i}"] = [rand.choice((40, 52, 64))] * mice_packets
    return Trace(
        flows,
        name=f"adversarial(ele={num_elephants},ramp={ramp_flows})",
    )


def bursty_trace(
    num_flows: int = 160,
    mean_bursts: float = 4.0,
    mean_burst_packets: float = 32.0,
    peak_length: int = 1500,
    idle_length: int = 40,
    rng: Union[None, int, random.Random] = None,
) -> Trace:
    """On/off traffic: trains of peak-size bursts separated by idle markers.

    Each flow emits ``~mean_bursts`` bursts of ``~mean_burst_packets``
    back-to-back ``peak_length``-byte packets, each burst closed by one
    ``idle_length``-byte packet (the off-gap marker).  Replayed with
    ``order="sequential"`` — or streamed, which consumes compiled
    flow-major chunks — burst adjacency is preserved, so per-epoch
    volume swings between peak and idle instead of averaging out.
    """
    if num_flows < 1:
        raise ParameterError(f"num_flows must be >= 1, got {num_flows!r}")
    if not (mean_bursts >= 1) or not (mean_burst_packets >= 1):
        raise ParameterError("mean_bursts and mean_burst_packets must be >= 1")
    if peak_length < 1 or idle_length < 1:
        raise ParameterError("packet lengths must be >= 1")
    rand = _as_rng(rng)
    flows: Dict[Hashable, List[int]] = {}
    for i in range(num_flows):
        bursts = 1 + int(rand.expovariate(1.0 / mean_bursts))
        packets: List[int] = []
        for _ in range(bursts):
            on = 1 + int(rand.expovariate(1.0 / mean_burst_packets))
            packets.extend([peak_length] * on)
            packets.append(idle_length)
        flows[f"burst/{i}"] = packets
    return Trace(flows, name=f"bursty(n={num_flows})")


# -- the chunk-only big trace --------------------------------------------------

#: Domain-separation tags for the per-purpose NumPy seed sequences, so
#: flow sizes and per-segment packet lengths draw from independent streams.
_SIZES_TAG = 0x5123
_SEGMENT_TAG = 0x5E65

_PROFILES = ("constant", "bimodal", "jittered")
_PROFILE_CDF = np.cumsum([NLANR_PROFILE_MIX[p] for p in _PROFILES])


class BigTrace:
    """An NLANR-like workload that exists only as compiled chunks.

    Flow volumes are heavy-tailed (Pareto over packet counts) and packet
    lengths follow the same three empirical profiles as
    :func:`~repro.traces.nlanr.nlanr_like` (constant / bimodal /
    jittered), but nothing list-shaped is ever built: flows are cut into
    ``segment_flows``-sized groups, each group is synthesised directly
    as a :class:`~repro.traces.compiled.CompiledTrace` when needed, and
    :meth:`iter_chunks` stitches the segments into the same canonical
    chunk boundaries a compiled trace would produce.  Peak RSS is
    bounded by one segment's arrays, independent of ``num_flows``.

    The surface is deliberately the *streaming* subset of the trace
    contract — ``iter_chunks`` / ``num_packets`` / ``true_totals`` —
    so :meth:`repro.streaming.StreamSession.consume` (and therefore
    :func:`repro.facade.stream`) accepts one directly.  The one-shot
    :func:`repro.facade.replay` path needs a materialised trace; use
    :meth:`materialize` for test-sized instances.
    """

    def __init__(
        self,
        num_flows: int = 100_000,
        mean_flow_packets: float = 40.0,
        pareto_shape: float = 1.2,
        seed: Optional[int] = 0,
        segment_flows: int = 8192,
        max_flow_packets: int = 50_000,
    ) -> None:
        if num_flows < 1:
            raise ParameterError(f"num_flows must be >= 1, got {num_flows!r}")
        if not (mean_flow_packets >= 1):
            raise ParameterError(
                f"mean_flow_packets must be >= 1, got {mean_flow_packets!r}")
        if not (pareto_shape > 1.0):
            raise ParameterError(
                f"pareto_shape must be > 1, got {pareto_shape!r}")
        if segment_flows < 1:
            raise ParameterError(
                f"segment_flows must be >= 1, got {segment_flows!r}")
        if max_flow_packets < 1:
            raise ParameterError(
                f"max_flow_packets must be >= 1, got {max_flow_packets!r}")
        self.seed = 0 if seed is None else int(seed)
        if self.seed < 0:
            raise ParameterError(f"seed must be >= 0, got {seed!r}")
        self.segment_flows = int(segment_flows)
        self.mean_flow_packets = float(mean_flow_packets)
        self.pareto_shape = float(pareto_shape)
        self.max_flow_packets = int(max_flow_packets)
        # Per-flow packet counts: the only O(num_flows) state held for
        # the trace's lifetime (int64 — 0.8 MB per 100k flows).
        rng = np.random.default_rng(
            np.random.SeedSequence([_SIZES_TAG, self.seed, num_flows]))
        scale = mean_flow_packets * (pareto_shape - 1.0) / pareto_shape
        u = rng.random(num_flows)
        sizes = np.ceil(scale / u ** (1.0 / pareto_shape)).astype(np.int64)
        np.clip(sizes, 1, self.max_flow_packets, out=sizes)
        self._sizes = sizes
        self._total = int(sizes.sum())
        self._volumes: Optional[np.ndarray] = None
        self.name = f"big-trace(n={num_flows},seed={self.seed})"

    # -- streaming-surface properties ---------------------------------------

    @property
    def num_flows(self) -> int:
        return len(self._sizes)

    @property
    def num_packets(self) -> int:
        return self._total

    @property
    def num_segments(self) -> int:
        return -(-self.num_flows // self.segment_flows)

    def __len__(self) -> int:
        return self.num_flows

    def __repr__(self) -> str:
        return (f"BigTrace(name={self.name!r}, flows={self.num_flows}, "
                f"packets={self.num_packets}, segments={self.num_segments})")

    # -- segment synthesis ---------------------------------------------------

    def flow_key(self, flow_id: int) -> str:
        return f"big/{flow_id}"

    def _segment(self, index: int) -> Tuple[CompiledTrace, np.ndarray]:
        """Synthesise segment ``index`` (flows ``[lo, hi)`` by flow id).

        Returns the segment as a compiled trace (rows sorted by
        descending packet count, per the compiled contract) plus the
        flow-id array aligned with its rows.  Regenerating the same
        index always yields bit-identical arrays — each segment owns a
        seed-sequence child keyed by ``(seed, index)``.
        """
        lo = index * self.segment_flows
        hi = min(lo + self.segment_flows, self.num_flows)
        if not (0 <= lo < hi):
            raise ParameterError(f"segment index {index!r} out of range")
        counts = self._sizes[lo:hi]
        order = np.argsort(-counts, kind="stable")
        counts = counts[order]
        ids = (lo + order).astype(np.int64)
        n = len(counts)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        rng = np.random.default_rng(
            np.random.SeedSequence([_SEGMENT_TAG, self.seed, index]))
        # Per-flow profile draws (one uniform each), then one uniform per
        # packet: the draw schedule is fixed, so content never depends on
        # chunking or how often a segment is regenerated.
        profile = np.searchsorted(_PROFILE_CDF, rng.random(n))
        const_len = np.asarray(_CONSTANT_LENGTH_CHOICES, dtype=np.float64)[
            rng.integers(0, len(_CONSTANT_LENGTH_CHOICES), n)]
        data_frac = rng.uniform(0.3, 0.9, n)
        base = np.asarray(_JITTER_BASE_CHOICES, dtype=np.float64)[
            rng.integers(0, len(_JITTER_BASE_CHOICES), n)]
        jitter = np.maximum(4.0, np.floor(base / 8.0))
        row = np.repeat(np.arange(n), counts)
        u = rng.random(total)
        lengths = np.where(
            profile[row] == 0,
            const_len[row],
            np.where(
                profile[row] == 1,
                np.where(u < data_frac[row], 1500.0, 40.0),
                np.clip(np.rint(base[row] + (2.0 * u - 1.0) * jitter[row]),
                        40.0, 1500.0),
            ),
        )
        volumes = (np.add.reduceat(lengths, offsets[:-1]).astype(np.int64)
                   if n else np.zeros(0, dtype=np.int64))
        keys = [self.flow_key(int(i)) for i in ids]
        compiled = CompiledTrace(name=f"{self.name}#seg{index}", keys=keys,
                                 lengths=lengths, offsets=offsets,
                                 sizes=counts, volumes=volumes)
        return compiled, ids

    # -- the chunk stream ----------------------------------------------------

    def iter_chunks(self, chunk_packets: int,
                    start: int = 0) -> Iterator[TraceChunk]:
        """Yield :class:`TraceChunk` windows of ``chunk_packets`` packets.

        Boundaries are canonical — chunk ``k`` covers global packets
        ``[start + k * chunk_packets, ...)`` exactly as
        :meth:`CompiledTrace.iter_chunks` would cut them — stitched
        across segment boundaries, so a stream resume (which passes the
        consumed prefix as ``start``) reproduces the uninterrupted run's
        chunks bit for bit.  Only the segment under the cursor is
        materialised.
        """
        if chunk_packets < 1:
            raise ParameterError(
                f"chunk_packets must be >= 1, got {chunk_packets!r}")
        total = self.num_packets
        if start < 0 or start > total:
            raise ParameterError(
                f"start must be in [0, {total}], got {start!r}")
        index = start // chunk_packets
        chunk_start = start
        budget = chunk_packets
        keys: List[Hashable] = []
        lens: List[np.ndarray] = []
        pos = 0
        for seg_index in range(self.num_segments):
            seg_packets = int(
                self._sizes[seg_index * self.segment_flows:
                            (seg_index + 1) * self.segment_flows].sum())
            if pos + seg_packets <= start:
                pos += seg_packets
                continue
            seg, _ = self._segment(seg_index)
            offsets = seg.offsets
            for i, key in enumerate(seg.keys):
                glo = pos + int(offsets[i])
                ghi = pos + int(offsets[i + 1])
                if ghi <= start:
                    continue
                lo = max(glo, start)
                while lo < ghi:
                    take = min(budget, ghi - lo)
                    keys.append(key)
                    lens.append(seg.lengths[lo - pos:lo - pos + take])
                    budget -= take
                    lo += take
                    if budget == 0:
                        yield TraceChunk(index=index, start=chunk_start,
                                         packets=chunk_packets, keys=keys,
                                         lengths=lens)
                        index += 1
                        chunk_start += chunk_packets
                        keys, lens, budget = [], [], chunk_packets
            pos += seg_packets
        if budget < chunk_packets:
            yield TraceChunk(index=index, start=chunk_start,
                             packets=chunk_packets - budget, keys=keys,
                             lengths=lens)

    # -- ground truth and test escape hatch ----------------------------------

    def true_totals_array(self, mode: str) -> np.ndarray:
        """Ground truth as ``int64``, indexed by flow id (``big/<id>``)."""
        if mode == "size":
            return self._sizes
        if mode == "volume":
            if self._volumes is None:
                volumes = np.zeros(self.num_flows, dtype=np.int64)
                for seg_index in range(self.num_segments):
                    seg, ids = self._segment(seg_index)
                    volumes[ids] = seg.volumes
                self._volumes = volumes
            return self._volumes
        raise ParameterError(f"mode must be 'size' or 'volume', got {mode!r}")

    def true_totals(self, mode: str) -> Dict[Hashable, int]:
        """Per-flow ground truth, same contract as :meth:`Trace.true_totals`."""
        totals = self.true_totals_array(mode)
        return {self.flow_key(i): int(t) for i, t in enumerate(totals)}

    def materialize(self, max_packets: int = 2_000_000) -> Trace:
        """Decompress into a :class:`Trace` — test-sized instances only.

        The whole point of a big trace is never holding it in one piece,
        so this refuses beyond ``max_packets``; it exists so tests can
        compare a streamed run against a one-shot replay of the same
        chunks.
        """
        if self.num_packets > max_packets:
            raise ParameterError(
                f"{self.name} has {self.num_packets} packets "
                f"(> {max_packets}); big traces are streaming-only — "
                f"consume via iter_chunks()/stream()"
            )
        flows: Dict[Hashable, List[int]] = {}
        for seg_index in range(self.num_segments):
            seg, _ = self._segment(seg_index)
            for i, key in enumerate(seg.keys):
                flows[key] = [
                    int(l) for l in
                    seg.lengths[seg.offsets[i]:seg.offsets[i + 1]]
                ]
        return Trace(flows, name=self.name)


def big_trace(
    num_flows: int = 100_000,
    mean_flow_packets: float = 40.0,
    pareto_shape: float = 1.2,
    seed: Optional[int] = 0,
    segment_flows: int = 8192,
    max_flow_packets: int = 50_000,
) -> BigTrace:
    """Build a :class:`BigTrace` — the NLANR-class chunk-only workload.

    At the defaults (100k flows, ~40 packets per flow) the stream is a
    few million packets, generated segment by segment; RSS stays bounded
    by ``segment_flows`` regardless of ``num_flows``.
    """
    return BigTrace(num_flows=num_flows, mean_flow_packets=mean_flow_packets,
                    pareto_shape=pareto_shape, seed=seed,
                    segment_flows=segment_flows,
                    max_flow_packets=max_flow_packets)
