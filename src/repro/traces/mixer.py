"""Trace composition: merge, scale and relabel traces.

Experiments routinely need composites — a backbone baseline plus an
attack overlay, the same workload at twice the volume, two scenarios
side by side.  These helpers build them from existing :class:`Trace`
objects without touching the generators.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.errors import ParameterError
from repro.traces.trace import Trace

__all__ = ["merge", "relabel", "scale_volume", "filter_flows", "attack_overlay"]


def relabel(trace: Trace, prefix: str) -> Trace:
    """Prefix every flow key (stringified) — namespacing before a merge."""
    return Trace(
        {f"{prefix}{flow}": lengths for flow, lengths in trace.flows.items()},
        name=f"{prefix}{trace.name}",
    )


def merge(traces: Sequence[Trace], name: str = "merged") -> Trace:
    """Union of several traces; flow keys must not collide."""
    if not traces:
        raise ParameterError("at least one trace is required")
    flows: Dict[Hashable, List[int]] = {}
    for trace in traces:
        for flow, lengths in trace.flows.items():
            if flow in flows:
                raise ParameterError(
                    f"flow key collision on {flow!r}; relabel() the inputs"
                )
            flows[flow] = list(lengths)
    return Trace(flows, name=name)


def scale_volume(trace: Trace, factor: float) -> Trace:
    """Repeat (or thin) each flow's packets to scale its volume ~``factor``.

    ``factor >= 1`` repeats the packet list (fractional remainders take a
    prefix); ``factor < 1`` keeps a prefix.  Packet sizes are untouched, so
    per-flow length statistics (the Table III variance predicate) survive.
    """
    if not (factor > 0):
        raise ParameterError(f"factor must be > 0, got {factor!r}")
    flows: Dict[Hashable, List[int]] = {}
    for flow, lengths in trace.flows.items():
        target = max(1, int(round(len(lengths) * factor)))
        repeated: List[int] = []
        while len(repeated) < target:
            take = min(len(lengths), target - len(repeated))
            repeated.extend(lengths[:take])
        flows[flow] = repeated
    return Trace(flows, name=f"{trace.name}:x{factor:g}")


def filter_flows(trace: Trace, predicate: Callable[[Hashable, List[int]], bool],
                 name: Optional[str] = None) -> Trace:
    """Keep only flows satisfying ``predicate(flow, lengths)``."""
    flows = {
        flow: lengths
        for flow, lengths in trace.flows.items()
        if predicate(flow, lengths)
    }
    if not flows:
        raise ParameterError("predicate removed every flow")
    return Trace(flows, name=name or f"{trace.name}:filtered")


def attack_overlay(
    base: Trace,
    num_attack_flows: int,
    packets_per_flow: int = 1,
    packet_length: int = 40,
    name: str = "attacked",
) -> Trace:
    """Overlay a flow-spray attack: many tiny flows on top of a baseline.

    The classic stressor for per-flow state (flow-table exhaustion): each
    attack flow carries ``packets_per_flow`` packets of ``packet_length``
    bytes under keys ``('atk', i)``.
    """
    if num_attack_flows < 1:
        raise ParameterError(f"num_attack_flows must be >= 1, got {num_attack_flows!r}")
    if packets_per_flow < 1:
        raise ParameterError(f"packets_per_flow must be >= 1, got {packets_per_flow!r}")
    if packet_length < 1:
        raise ParameterError(f"packet_length must be >= 1, got {packet_length!r}")
    flows: Dict[Hashable, List[int]] = {
        f"base/{flow}": list(lengths) for flow, lengths in base.flows.items()
    }
    for i in range(num_attack_flows):
        flows[("atk", i)] = [packet_length] * packets_per_flow
    return Trace(flows, name=name)
