"""Struct-of-arrays trace form for the array-native replay engine.

A :class:`~repro.traces.trace.Trace` stores flows as Python lists, which
is the right shape for per-packet ``observe()`` loops but the wrong shape
for vectorised replay: the batch engine wants every flow's packet lengths
in one contiguous ``float64`` array with CSR-style offsets, flows ordered
by descending packet budget so the still-active set at any replay column
is a prefix.

:func:`compile_trace` performs that conversion exactly once per trace
*content*: the cache is keyed by a content fingerprint (name, flow keys
and packet lengths), so repeated replays — the Figure 5-7 sweep replays
one trace ten times — and :mod:`repro.harness.parallel` workers reuse
the arrays, equal-content trace objects share one compilation, and a
derived trace that happens to reuse a source's name (merged or
renormalized workloads) can never be served the source's stale arrays.
A :class:`CompiledTrace` also pickles as a handful of NumPy buffers
rather than a dict of per-flow Python lists, which shrinks the
process-pool transfer for full-scale traces by an order of magnitude.
"""

from __future__ import annotations

import hashlib
import random
import weakref
from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

from repro.errors import ParameterError
from repro.flows.packet import FlowKey
from repro.traces.trace import Trace

__all__ = ["CompiledTrace", "TraceChunk", "compile_trace",
           "clear_compile_cache", "trace_fingerprint"]


class TraceChunk:
    """A zero-copy window over a compiled trace's packet stream.

    ``keys[j]`` owns ``lengths[j]`` — a *view* into the parent trace's
    ``lengths`` array covering that flow's packets inside this window.
    Chunks partition the compiled (flow-major) packet order: chunk ``k``
    covers global packets ``[start, start + packets)``.
    """

    __slots__ = ("index", "start", "packets", "keys", "lengths")

    def __init__(self, index: int, start: int, packets: int,
                 keys: List[FlowKey], lengths: List[np.ndarray]) -> None:
        self.index = index
        self.start = start
        self.packets = packets
        self.keys = keys
        self.lengths = lengths

    def pairs(self) -> Iterator[Tuple[FlowKey, int]]:
        """Yield the window's ``(flow, length)`` pairs (debug/interop)."""
        for key, lens in zip(self.keys, self.lengths):
            for l in lens:
                yield key, int(l)

    def __repr__(self) -> str:
        return (f"TraceChunk(index={self.index}, start={self.start}, "
                f"packets={self.packets}, flows={len(self.keys)})")


class CompiledTrace:
    """A trace compiled to struct-of-arrays form.

    Attributes
    ----------
    keys:
        Flow keys, ordered by **descending packet count** (stable within
        ties).  Row ``i`` of every per-flow array refers to ``keys[i]``.
    lengths:
        All packet lengths, ``float64``, flows concatenated in key order
        with each flow's packets in original (trace) order.
    offsets:
        CSR offsets into ``lengths``: flow ``i`` owns
        ``lengths[offsets[i]:offsets[i + 1]]``.
    sizes:
        Per-flow packet counts (``int64``, non-increasing).
    volumes:
        Per-flow byte totals (``int64``).
    """

    __slots__ = ("name", "keys", "lengths", "offsets", "sizes", "volumes",
                 "__weakref__")

    def __init__(self, name: str, keys: List[FlowKey], lengths: np.ndarray,
                 offsets: np.ndarray, sizes: np.ndarray,
                 volumes: np.ndarray) -> None:
        self.name = name
        self.keys = keys
        self.lengths = lengths
        self.offsets = offsets
        self.sizes = sizes
        self.volumes = volumes

    # -- construction --------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace) -> "CompiledTrace":
        """Compile a :class:`Trace` (use :func:`compile_trace` to cache)."""
        items = list(trace.flows.items())
        raw_sizes = np.fromiter((len(ls) for _, ls in items),
                                dtype=np.int64, count=len(items))
        # Descending budget, stable so equal-sized flows keep trace order;
        # the active set at replay column t is then always a prefix.
        order = np.argsort(-raw_sizes, kind="stable")
        keys = [items[i][0] for i in order]
        sizes = raw_sizes[order]
        offsets = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        lengths = np.empty(int(offsets[-1]), dtype=np.float64)
        for row, i in enumerate(order):
            lengths[offsets[row]:offsets[row + 1]] = items[i][1]
        if lengths.size and not np.all(lengths > 0):
            raise ParameterError("packet lengths must be > 0")
        volumes = np.add.reduceat(lengths, offsets[:-1]).astype(np.int64) \
            if len(items) else np.zeros(0, dtype=np.int64)
        return cls(name=trace.name, keys=keys, lengths=lengths,
                   offsets=offsets, sizes=sizes, volumes=volumes)

    def to_trace(self) -> Trace:
        """Rebuild a list-of-lists :class:`Trace` (compiled flow order)."""
        flows = {
            key: [int(l) for l in
                  self.lengths[self.offsets[i]:self.offsets[i + 1]]]
            for i, key in enumerate(self.keys)
        }
        return Trace(flows, name=self.name)

    # -- trace-compatible surface (what replay() needs) ----------------------

    @property
    def num_flows(self) -> int:
        return len(self.keys)

    @property
    def num_packets(self) -> int:
        return int(self.offsets[-1])

    @property
    def max_flow_packets(self) -> int:
        """Largest per-flow packet count — the batch engine's column count."""
        return int(self.sizes[0]) if len(self.keys) else 0

    def __len__(self) -> int:
        return len(self.keys)

    def true_totals(self, mode: str) -> Dict[FlowKey, int]:
        """Per-flow ground truth, same contract as :meth:`Trace.true_totals`."""
        totals = self.true_totals_array(mode)
        return {key: int(t) for key, t in zip(self.keys, totals)}

    def true_totals_array(self, mode: str) -> np.ndarray:
        """Ground truth as an ``int64`` array aligned with ``keys``."""
        if mode == "size":
            return self.sizes
        if mode == "volume":
            return self.volumes
        raise ParameterError(f"mode must be 'size' or 'volume', got {mode!r}")

    def packet_pairs(
        self, order: str = "asis",
        rng: Union[None, int, random.Random] = None,
    ) -> Iterator[Tuple[FlowKey, int]]:
        """Yield ``(flow, length)`` pairs, mirroring :meth:`Trace.packet_pairs`.

        Lets the per-packet engines replay a compiled trace without
        decompressing it back into Python lists first.  ``"asis"`` /
        ``"sequential"`` stream each flow back-to-back in compiled order;
        ``"shuffled"`` draws a uniformly random global order;
        ``"roundrobin"`` interleaves one packet per still-active flow.
        """
        if order in ("asis", "sequential"):
            for i, key in enumerate(self.keys):
                for l in self.lengths[self.offsets[i]:self.offsets[i + 1]]:
                    yield key, int(l)
            return
        if order == "shuffled":
            rand = rng if isinstance(rng, random.Random) else random.Random(rng)
            pairs = [(key, int(l))
                     for i, key in enumerate(self.keys)
                     for l in self.lengths[self.offsets[i]:self.offsets[i + 1]]]
            rand.shuffle(pairs)
            yield from pairs
            return
        if order == "roundrobin":
            for t in range(self.max_flow_packets):
                active = self.active_prefix(t)
                for i in range(active):
                    yield self.keys[i], int(self.lengths[self.offsets[i] + t])
            return
        raise ParameterError(
            f"order must be 'asis', 'sequential', 'shuffled' or 'roundrobin', "
            f"got {order!r}"
        )

    def iter_chunks(self, chunk_packets: int,
                    start: int = 0) -> Iterator[TraceChunk]:
        """Yield :class:`TraceChunk` views of ``chunk_packets`` packets each.

        Chunks cover global packets ``[start, num_packets)`` in compiled
        (flow-major) order, every chunk full except possibly the last;
        the per-flow ``lengths`` entries are views, so iterating a trace
        in chunks allocates O(flows-per-chunk), not O(packets).  Chunk
        numbering stays aligned with a from-zero iteration when
        ``start`` is a multiple of ``chunk_packets`` — what a stream
        resume passes.
        """
        if chunk_packets < 1:
            raise ParameterError(
                f"chunk_packets must be >= 1, got {chunk_packets!r}")
        total = self.num_packets
        if start < 0 or start > total:
            raise ParameterError(
                f"start must be in [0, {total}], got {start!r}")
        offsets = self.offsets
        num_flows = self.num_flows
        index = start // chunk_packets
        p = start
        while p < total:
            q = min(p + chunk_packets, total)
            # Flows overlapping [p, q): flow i owns [offsets[i],
            # offsets[i+1]), so the first is the rightmost i with
            # offsets[i] <= p and the last has offsets[i] < q.
            first = int(np.searchsorted(offsets, p, side="right")) - 1
            last = min(int(np.searchsorted(offsets, q, side="left")),
                       num_flows)
            keys: List[FlowKey] = []
            lens: List[np.ndarray] = []
            for i in range(first, last):
                lo = max(p, int(offsets[i]))
                hi = min(q, int(offsets[i + 1]))
                if hi > lo:
                    keys.append(self.keys[i])
                    lens.append(self.lengths[lo:hi])
            yield TraceChunk(index=index, start=p, packets=q - p,
                             keys=keys, lengths=lens)
            index += 1
            p = q

    def active_prefix(self, column: int) -> int:
        """Number of flows with more than ``column`` packets.

        Because flows are sorted by descending budget, those flows are
        exactly rows ``0..active_prefix(column)``.
        """
        # sizes is non-increasing, so negate for searchsorted's ascending
        # contract: count of sizes strictly greater than `column` = count
        # of negated sizes strictly below ``-column``.
        return int(np.searchsorted(-self.sizes, -column, side="left"))

    def nbytes(self) -> int:
        """Array memory footprint in bytes (the pickling payload size)."""
        return int(self.lengths.nbytes + self.offsets.nbytes
                   + self.sizes.nbytes + self.volumes.nbytes)

    def __repr__(self) -> str:
        return (f"CompiledTrace(name={self.name!r}, flows={len(self.keys)}, "
                f"packets={self.num_packets})")


def trace_fingerprint(trace: Trace) -> bytes:
    """Content fingerprint of a trace: name, flow keys, packet lengths.

    Two traces fingerprint equal exactly when they would compile to the
    same :class:`CompiledTrace` (same name, same flows in the same
    insertion order, same packet lengths).  This is the compile-cache
    key: identity-keyed caching served stale arrays whenever a derived
    trace reused a source object or a source name with different
    contents.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(trace.name.encode("utf-8", "surrogatepass"))
    for flow, lengths in trace.flows.items():
        digest.update(repr(flow).encode("utf-8", "surrogatepass"))
        digest.update(np.asarray(lengths, dtype=np.float64).tobytes())
    return digest.digest()


#: Identity fast path: maps a live Trace to its (fingerprint, compiled)
#: pair.  The fingerprint is re-derived on every hit, so in-place
#: mutation of ``trace.flows`` forces a recompile instead of serving
#: stale arrays.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[Trace, Tuple[bytes, CompiledTrace]]" = \
    weakref.WeakKeyDictionary()
#: Content dedupe: equal-content Trace objects share one compilation.
#: Values are weak so an unreferenced compilation can be collected.
_FINGERPRINT_CACHE: "weakref.WeakValueDictionary[bytes, CompiledTrace]" = \
    weakref.WeakValueDictionary()


def compile_trace(trace: Union[Trace, CompiledTrace]) -> CompiledTrace:
    """Compile ``trace`` to struct-of-arrays form, reusing a cached result.

    Passing an already-compiled trace is a no-op, so callers can accept
    either form.  The cache is keyed by :func:`trace_fingerprint`
    (content, not object identity or name alone): equal-content traces
    share one compilation, and a mutated or derived trace always
    recompiles.
    """
    if isinstance(trace, CompiledTrace):
        return trace
    if not isinstance(trace, Trace):
        hint = ("; chunk-only workloads (iter_chunks providers) are "
                "streaming-only — consume them via stream()"
                if hasattr(trace, "iter_chunks") else "")
        raise ParameterError(
            f"compile_trace needs a Trace or CompiledTrace, got "
            f"{type(trace).__name__}{hint}")
    fingerprint = trace_fingerprint(trace)
    entry = _COMPILE_CACHE.get(trace)
    if entry is not None and entry[0] == fingerprint:
        return entry[1]
    compiled = _FINGERPRINT_CACHE.get(fingerprint)
    if compiled is None:
        compiled = CompiledTrace.from_trace(trace)
        _FINGERPRINT_CACHE[fingerprint] = compiled
    _COMPILE_CACHE[trace] = (fingerprint, compiled)
    return compiled


def clear_compile_cache() -> None:
    """Drop all cached compilations (tests and memory-pressure hooks)."""
    _COMPILE_CACHE.clear()
    _FINGERPRINT_CACHE.clear()
