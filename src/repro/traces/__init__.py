"""Workload substrate: distributions, synthetic scenarios, NLANR-like trace, I/O.

Workloads are built by name through the public registry —
:func:`make_trace` / :func:`trace_factory` mirror
:func:`repro.make_scheme` / :func:`repro.scheme_factory` — and composed
or stressed through the :mod:`repro.traces.toolkit` helpers
(:func:`merge_traces`, :func:`renormalize`, churn / adversarial / burst
generators, and the chunk-only :func:`big_trace`).
"""

from repro.traces.distributions import (
    Constant,
    Exponential,
    Pareto,
    Sampler,
    TruncatedExponential,
    UniformInt,
)
from repro.traces.arrival import constant_rate, on_off, poisson
from repro.traces.mixer import (
    attack_overlay,
    filter_flows,
    merge,
    relabel,
    scale_volume,
)
from repro.traces.compiled import CompiledTrace, clear_compile_cache, compile_trace
from repro.traces.nlanr import NLANR_PROFILE_MIX, nlanr_like
from repro.traces.pcap import iter_pcap_packets, read_pcap, write_pcap
from repro.traces.synthetic import (
    generate_flows,
    packet_length_sampler,
    scenario1,
    scenario2,
    scenario3,
)
from repro.traces.registry import (
    TraceFactory,
    TraceSpec,
    make_trace,
    register_trace,
    trace_factory,
    trace_names,
    trace_spec,
)
from repro.traces.toolkit import (
    BigTrace,
    adversarial_trace,
    big_trace,
    bursty_trace,
    churn_trace,
    merge_traces,
    renormalize,
)
from repro.traces.trace import Trace, TraceStats
from repro.traces.zipf import ZipfPopularity, zipf_packets, zipf_trace
from repro.traces.trace_io import iter_trace_packets, read_trace, write_trace

__all__ = [
    "Trace",
    "TraceStats",
    "CompiledTrace",
    "compile_trace",
    "clear_compile_cache",
    "TraceSpec",
    "TraceFactory",
    "make_trace",
    "trace_factory",
    "trace_names",
    "trace_spec",
    "register_trace",
    "merge_traces",
    "renormalize",
    "churn_trace",
    "adversarial_trace",
    "bursty_trace",
    "big_trace",
    "BigTrace",
    "Pareto",
    "Exponential",
    "UniformInt",
    "TruncatedExponential",
    "Constant",
    "Sampler",
    "generate_flows",
    "scenario1",
    "scenario2",
    "scenario3",
    "packet_length_sampler",
    "nlanr_like",
    "NLANR_PROFILE_MIX",
    "read_trace",
    "write_trace",
    "iter_trace_packets",
    "constant_rate",
    "poisson",
    "on_off",
    "merge",
    "relabel",
    "scale_volume",
    "filter_flows",
    "attack_overlay",
    "ZipfPopularity",
    "zipf_packets",
    "zipf_trace",
    "write_pcap",
    "read_pcap",
    "iter_pcap_packets",
]
