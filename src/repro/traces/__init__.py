"""Workload substrate: distributions, synthetic scenarios, NLANR-like trace, I/O."""

from repro.traces.distributions import (
    Constant,
    Exponential,
    Pareto,
    Sampler,
    TruncatedExponential,
    UniformInt,
)
from repro.traces.arrival import constant_rate, on_off, poisson
from repro.traces.mixer import (
    attack_overlay,
    filter_flows,
    merge,
    relabel,
    scale_volume,
)
from repro.traces.compiled import CompiledTrace, clear_compile_cache, compile_trace
from repro.traces.nlanr import NLANR_PROFILE_MIX, nlanr_like
from repro.traces.pcap import iter_pcap_packets, read_pcap, write_pcap
from repro.traces.synthetic import (
    generate_flows,
    packet_length_sampler,
    scenario1,
    scenario2,
    scenario3,
)
from repro.traces.trace import Trace, TraceStats
from repro.traces.zipf import ZipfPopularity, zipf_packets, zipf_trace
from repro.traces.trace_io import iter_trace_packets, read_trace, write_trace

__all__ = [
    "Trace",
    "TraceStats",
    "CompiledTrace",
    "compile_trace",
    "clear_compile_cache",
    "Pareto",
    "Exponential",
    "UniformInt",
    "TruncatedExponential",
    "Constant",
    "Sampler",
    "generate_flows",
    "scenario1",
    "scenario2",
    "scenario3",
    "packet_length_sampler",
    "nlanr_like",
    "NLANR_PROFILE_MIX",
    "read_trace",
    "write_trace",
    "iter_trace_packets",
    "constant_rate",
    "poisson",
    "on_off",
    "merge",
    "relabel",
    "scale_volume",
    "filter_flows",
    "attack_overlay",
    "ZipfPopularity",
    "zipf_packets",
    "zipf_trace",
    "write_pcap",
    "read_pcap",
    "iter_pcap_packets",
]
