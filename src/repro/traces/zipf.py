"""Zipf-popularity workloads.

Measurement papers (and the 80-20 rule the IXP test bench invokes) model
flow popularity as Zipfian: the k-th most popular flow receives traffic
proportional to ``1/k^alpha``.  This generator produces packet streams and
traces under that law — the standard skew knob for stress-testing per-flow
structures (flow tables, CMAs, heavy-hitter detectors).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Dict, Iterator, List, Tuple, Union

from repro.errors import ParameterError
from repro.traces.trace import Trace

__all__ = ["ZipfPopularity", "zipf_packets", "zipf_trace"]


class ZipfPopularity:
    """Samples flow indices ``0..n-1`` with probability ∝ ``1/(k+1)^alpha``."""

    def __init__(self, num_flows: int, alpha: float = 1.0) -> None:
        if num_flows < 1:
            raise ParameterError(f"num_flows must be >= 1, got {num_flows!r}")
        if alpha < 0:
            raise ParameterError(f"alpha must be >= 0, got {alpha!r}")
        self.num_flows = num_flows
        self.alpha = alpha
        weights = [1.0 / (k + 1) ** alpha for k in range(num_flows)]
        total = sum(weights)
        self._cumulative: List[float] = list(
            itertools.accumulate(w / total for w in weights)
        )
        self._cumulative[-1] = 1.0

    def probability(self, rank: int) -> float:
        """Probability of the flow at popularity rank ``rank`` (0-based)."""
        if not (0 <= rank < self.num_flows):
            raise ParameterError(f"rank {rank} out of range")
        previous = self._cumulative[rank - 1] if rank else 0.0
        return self._cumulative[rank] - previous

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cumulative, rng.random())

    def top_share(self, fraction: float) -> float:
        """Traffic share of the top ``fraction`` of flows (the 80-20 check)."""
        if not (0.0 < fraction <= 1.0):
            raise ParameterError(f"fraction must be in (0, 1], got {fraction!r}")
        k = max(1, int(self.num_flows * fraction))
        return self._cumulative[k - 1]


def zipf_packets(
    num_packets: int,
    num_flows: int,
    alpha: float = 1.0,
    min_length: int = 40,
    max_length: int = 1500,
    rng: Union[None, int, random.Random] = None,
) -> Iterator[Tuple[int, int]]:
    """Stream ``(flow, length)`` pairs under Zipf(``alpha``) popularity."""
    if num_packets < 1:
        raise ParameterError(f"num_packets must be >= 1, got {num_packets!r}")
    if not (0 < min_length <= max_length):
        raise ParameterError("need 0 < min_length <= max_length")
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    popularity = ZipfPopularity(num_flows, alpha)
    for _ in range(num_packets):
        yield popularity.sample(rand), rand.randint(min_length, max_length)


def zipf_trace(
    num_packets: int,
    num_flows: int,
    alpha: float = 1.0,
    min_length: int = 40,
    max_length: int = 1500,
    rng: Union[None, int, random.Random] = None,
) -> Trace:
    """Materialise a Zipf stream as a :class:`Trace`.

    Flows that receive no packets are absent from the trace (matching how
    a monitor would see the world).
    """
    flows: Dict[int, List[int]] = {}
    for flow, length in zipf_packets(num_packets, num_flows, alpha,
                                     min_length, max_length, rng):
        flows.setdefault(flow, []).append(length)
    return Trace(flows, name=f"zipf(a={alpha:g},n={num_flows})")
