"""ASCII rendering of experiment output — the rows/series the paper prints."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["render_table", "render_series", "format_number"]


def format_number(value) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-4:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table."""
    materialized: List[List[str]] = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialized:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    label: str, points: Sequence[Tuple[float, float]], max_points: int = 12
) -> str:
    """Render an (x, y) series as a compact one-liner-per-point block.

    Long series are decimated to ``max_points`` — enough to read a curve's
    shape off a terminal.
    """
    if len(points) > max_points:
        step = (len(points) - 1) / (max_points - 1)
        indices = sorted({int(round(i * step)) for i in range(max_points)})
        shown = [points[i] for i in indices]
    else:
        shown = list(points)
    lines = [f"[{label}]"]
    for x, y in shown:
        lines.append(f"  x={format_number(x):>12}  y={format_number(y)}")
    return "\n".join(lines)
