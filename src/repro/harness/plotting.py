"""Terminal plotting: ASCII line charts for experiment series.

The benchmarks print the paper's figures as data tables; for a quick look
at *shape* (convergence to a bound, crossovers, error descent) an ASCII
chart in the terminal beats scanning numbers.  No external dependencies,
log-scale support, multiple series with distinct markers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ParameterError

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    if hi <= lo:
        return 0
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    fraction = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(round(fraction * (steps - 1)))))


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_log: bool = False,
    y_log: bool = False,
    title: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping of label to point list.  Each series gets the next marker
        from ``* o + x ...``; collisions show the later series' marker.
    width, height:
        Plot area in characters.
    x_log, y_log:
        Logarithmic axes (all coordinates must then be positive).
    """
    if not series:
        raise ParameterError("at least one series is required")
    if width < 8 or height < 4:
        raise ParameterError("chart must be at least 8x4")
    if len(series) > len(_MARKERS):
        raise ParameterError(f"at most {len(_MARKERS)} series supported")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ParameterError("series contain no points")
    if (x_log and any(x <= 0 for x, _ in points)) or (
        y_log and any(y <= 0 for _, y in points)
    ):
        raise ParameterError("log axes need strictly positive coordinates")

    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width, x_log)
            row = height - 1 - _scale(y, y_lo, y_hi, height, y_log)
            grid[row][col] = marker

    def fmt(v: float) -> str:
        if v == 0:
            return "0"
        if abs(v) >= 1e4 or abs(v) < 1e-3:
            return f"{v:.1e}"
        return f"{v:.4g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{marker}={label}" for marker, label in zip(_MARKERS, series)
    )
    lines.append(legend)
    y_label_width = max(len(fmt(y_hi)), len(fmt(y_lo)))
    for i, row in enumerate(grid):
        if i == 0:
            label = fmt(y_hi).rjust(y_label_width)
        elif i == height - 1:
            label = fmt(y_lo).rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{' ' * y_label_width} +{'-' * width}+"
    lines.append(x_axis)
    lines.append(
        f"{' ' * y_label_width}  {fmt(x_lo)}"
        f"{' ' * max(1, width - len(fmt(x_lo)) - len(fmt(x_hi)))}{fmt(x_hi)}"
    )
    return "\n".join(lines)
