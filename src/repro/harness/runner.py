"""Replay driver: push a trace through a counting scheme and score it.

Three engines drive the same replay contract:

``"python"``
    The reference per-packet ``observe()`` loop.  Works for every scheme.
``"fast"``
    The same loop with Algorithm-1 decisions memoized behind an exact
    :class:`~repro.core.fastpath.UpdateCache` — bit-for-bit identical
    trajectories, only the transcendental math is skipped.  DISCO
    sketches only.
``"vector"``
    The array-native engine (:mod:`repro.core.batchreplay`): the trace is
    compiled to struct-of-arrays form once and all flows advance in
    lockstep NumPy column steps.  Distributionally equivalent to the
    scalar engines (same estimator law — unbiased mean, Theorem 2/3
    moments) but *not* bit-identical: it consumes a NumPy random stream
    column-major.  Plain fresh DISCO sketches only; arrival ``order`` is
    ignored because per-flow counters are order-independent across flows.
``"auto"``
    ``"fast"`` when the scheme supports the exact cache, else
    ``"python"``.  Never silently picks ``"vector"``, so seeded results
    stay reproducible unless a caller opts in.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Union

from repro.errors import ParameterError
from repro.metrics.errors import (
    ErrorSummary,
    relative_errors,
    relative_errors_array,
    summarize_errors,
    summarize_errors_array,
)
from repro.traces.compiled import CompiledTrace
from repro.traces.trace import Trace

__all__ = ["RunResult", "replay", "replay_stream", "resolve_engine", "ENGINES"]

#: Valid values of the ``engine`` parameter.
ENGINES = ("auto", "python", "fast", "vector")

AnyTrace = Union[Trace, CompiledTrace]


@dataclass
class RunResult:
    """Outcome of replaying one trace through one scheme."""

    scheme_name: str
    trace_name: str
    mode: str
    errors: List[float]
    summary: ErrorSummary
    estimates: Dict[Hashable, float]
    truths: Dict[Hashable, int]
    max_counter_bits: int
    elapsed_seconds: float
    packets: int
    engine: str = "python"


def resolve_engine(engine: str, scheme) -> str:
    """Map an ``engine`` request to the concrete engine used for ``scheme``.

    ``"auto"`` degrades gracefully; explicit requests are strict — asking
    for ``"fast"`` or ``"vector"`` with an unsupported scheme raises, so
    a benchmark never silently times the wrong path.
    """
    from repro.core.batchreplay import vector_spec
    from repro.core.disco import DiscoSketch
    from repro.core.fastpath import FastDiscoSketch

    if engine not in ENGINES:
        raise ParameterError(
            f"engine must be one of {', '.join(ENGINES)}, got {engine!r}"
        )
    cacheable = isinstance(scheme, (DiscoSketch, FastDiscoSketch))
    if engine == "auto":
        return "fast" if cacheable else "python"
    if engine == "fast" and not cacheable:
        raise ParameterError(
            f"engine='fast' needs a DISCO sketch, got {type(scheme).__name__}"
        )
    if engine == "vector" and vector_spec(scheme) is None:
        raise ParameterError(
            f"engine='vector' needs a fresh plain DISCO sketch with a "
            f"geometric counting function, got {type(scheme).__name__} "
            f"(burst aggregation, variance tracking, pre-observed flows "
            f"and custom functions are scalar-only)"
        )
    return engine


def replay(
    scheme,
    trace: AnyTrace,
    order: str = "shuffled",
    rng: Union[None, int, random.Random] = None,
    engine: str = "auto",
) -> RunResult:
    """Feed every packet of ``trace`` to ``scheme`` and score the estimates.

    The scheme's ``mode`` attribute is used to pick the matching ground
    truth (packets for ``"size"``, bytes for ``"volume"``).  Wall-clock time
    covers only the per-packet update loop — the quantity Table IV compares.
    ``trace`` may be a :class:`~repro.traces.trace.Trace` or an
    already-compiled :class:`~repro.traces.compiled.CompiledTrace`.

    ``engine`` selects the replay implementation (see the module
    docstring).  ``rng`` seeds the arrival shuffle for the per-packet
    engines; the vector engine derives its NumPy stream from the scheme's
    own generator, so a seeded scheme gives a deterministic replay.
    """
    engine = resolve_engine(engine, scheme)
    if engine == "vector":
        return _replay_vector(scheme, trace)
    if engine == "fast" and hasattr(scheme, "enable_update_cache"):
        scheme.enable_update_cache()

    if order == "shuffled":
        # Materialised up front so shuffle cost stays out of the timing.
        packets = list(trace.packet_pairs(order=order, rng=rng))
        count = len(packets)
    else:
        # Order-preserving iterations ("asis"/"sequential"/"roundrobin")
        # stream straight off the trace: no second copy of the packet
        # list, which halves peak memory on full-scale replays.
        packets = trace.packet_pairs(order=order, rng=rng)
        count = None
    start = time.perf_counter()
    observe = scheme.observe
    n = 0
    for flow, length in packets:
        observe(flow, length)
        n += 1
    if hasattr(scheme, "flush"):
        scheme.flush()
    elapsed = time.perf_counter() - start

    truths = trace.true_totals(scheme.mode)
    estimates = {flow: scheme.estimate(flow) for flow in truths}
    errors = relative_errors(estimates, truths)
    return RunResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=trace.name,
        mode=scheme.mode,
        errors=errors,
        summary=summarize_errors(errors),
        estimates=estimates,
        truths=truths,
        max_counter_bits=scheme.max_counter_bits(),
        elapsed_seconds=elapsed,
        packets=count if count is not None else n,
        engine=engine,
    )


def _replay_vector(scheme, trace: AnyTrace) -> RunResult:
    """Array-native replay; leaves ``scheme`` holding the final counters."""
    from repro.core.batchreplay import replay_batch, vector_spec
    from repro.core.disco import DiscoSketch

    spec = vector_spec(scheme)
    result = replay_batch(
        trace,
        spec.b,
        mode=spec.mode,
        rng=scheme._rng,
        capacity_bits=spec.capacity_bits,
    )
    # Hand the counters back so the scheme's read-out surface (estimate /
    # flows / max_counter_bits) reflects the replay, as it would have
    # after a per-packet run.
    scheme._counters = result.counters_dict()
    if isinstance(scheme, DiscoSketch):
        scheme.packets_observed += result.packets
        scheme.saturation_events += result.saturation_events

    errors_arr = relative_errors_array(result.estimates, result.truths)
    estimates = result.estimates_dict()
    truths = {k: int(t) for k, t in zip(result.keys, result.truths)}
    return RunResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=trace.name,
        mode=spec.mode,
        errors=[float(e) for e in errors_arr],
        summary=summarize_errors_array(errors_arr),
        estimates=estimates,
        truths=truths,
        max_counter_bits=scheme.max_counter_bits(),
        elapsed_seconds=result.elapsed_seconds,
        packets=result.packets,
        engine="vector",
    )


def replay_stream(scheme, packets, trace_name: str = "stream") -> RunResult:
    """Feed a ``(flow, length)`` iterable to ``scheme`` without a Trace.

    For trace files too large to hold in memory: pair it with
    :func:`repro.traces.trace_io.iter_trace_packets`.  Packets are
    consumed strictly one at a time — nothing is buffered — and ground
    truth is accumulated on the fly, so the memory footprint is one
    counter plus one truth integer per *flow*, never per packet.
    """
    truths: Dict[Hashable, int] = {}
    count = 0
    observe = scheme.observe
    start = time.perf_counter()
    for flow, length in packets:
        observe(flow, length)
        amount = 1 if scheme.mode == "size" else int(length)
        truths[flow] = truths.get(flow, 0) + amount
        count += 1
    if hasattr(scheme, "flush"):
        scheme.flush()
    elapsed = time.perf_counter() - start
    estimates = {flow: scheme.estimate(flow) for flow in truths}
    errors = relative_errors(estimates, truths)
    return RunResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=trace_name,
        mode=scheme.mode,
        errors=errors,
        summary=summarize_errors(errors),
        estimates=estimates,
        truths=truths,
        max_counter_bits=scheme.max_counter_bits(),
        elapsed_seconds=elapsed,
        packets=count,
        engine="python",
    )
