"""Replay driver: push a trace through a counting scheme and score it."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Union

from repro.metrics.errors import ErrorSummary, relative_errors, summarize_errors
from repro.traces.trace import Trace

__all__ = ["RunResult", "replay", "replay_stream"]


@dataclass
class RunResult:
    """Outcome of replaying one trace through one scheme."""

    scheme_name: str
    trace_name: str
    mode: str
    errors: List[float]
    summary: ErrorSummary
    estimates: Dict[Hashable, float]
    truths: Dict[Hashable, int]
    max_counter_bits: int
    elapsed_seconds: float
    packets: int


def replay(
    scheme,
    trace: Trace,
    order: str = "shuffled",
    rng: Union[None, int, random.Random] = None,
) -> RunResult:
    """Feed every packet of ``trace`` to ``scheme`` and score the estimates.

    The scheme's ``mode`` attribute is used to pick the matching ground
    truth (packets for ``"size"``, bytes for ``"volume"``).  Wall-clock time
    covers only the per-packet update loop — the quantity Table IV compares.
    """
    packets = list(trace.packet_pairs(order=order, rng=rng))
    start = time.perf_counter()
    observe = scheme.observe
    for flow, length in packets:
        observe(flow, length)
    if hasattr(scheme, "flush"):
        scheme.flush()
    elapsed = time.perf_counter() - start

    truths = trace.true_totals(scheme.mode)
    estimates = {flow: scheme.estimate(flow) for flow in truths}
    errors = relative_errors(estimates, truths)
    return RunResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=trace.name,
        mode=scheme.mode,
        errors=errors,
        summary=summarize_errors(errors),
        estimates=estimates,
        truths=truths,
        max_counter_bits=scheme.max_counter_bits(),
        elapsed_seconds=elapsed,
        packets=len(packets),
    )


def replay_stream(scheme, packets, trace_name: str = "stream") -> RunResult:
    """Feed a ``(flow, length)`` iterable to ``scheme`` without a Trace.

    For trace files too large to hold in memory: pair it with
    :func:`repro.traces.trace_io.iter_trace_packets`.  Ground truth is
    accumulated on the fly, so the memory footprint is one counter plus
    one truth integer per *flow*, never per packet.
    """
    truths: Dict[Hashable, int] = {}
    count = 0
    observe = scheme.observe
    start = time.perf_counter()
    for flow, length in packets:
        observe(flow, length)
        amount = 1 if scheme.mode == "size" else int(length)
        truths[flow] = truths.get(flow, 0) + amount
        count += 1
    if hasattr(scheme, "flush"):
        scheme.flush()
    elapsed = time.perf_counter() - start
    estimates = {flow: scheme.estimate(flow) for flow in truths}
    errors = relative_errors(estimates, truths)
    return RunResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=trace_name,
        mode=scheme.mode,
        errors=errors,
        summary=summarize_errors(errors),
        estimates=estimates,
        truths=truths,
        max_counter_bits=scheme.max_counter_bits(),
        elapsed_seconds=elapsed,
        packets=count,
    )
