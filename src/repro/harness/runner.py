"""Replay driver: push a trace through a counting scheme and score it.

Four engines drive the same replay contract:

``"python"``
    The reference per-packet ``observe()`` loop.  Works for every scheme.
``"fast"``
    The same loop with Algorithm-1 decisions memoized behind an exact
    :class:`~repro.core.fastpath.UpdateCache` — bit-for-bit identical
    trajectories, only the transcendental math is skipped.  DISCO
    sketches only.
``"vector"``
    The array-native engine (:mod:`repro.core.batchreplay`): the trace is
    compiled to struct-of-arrays form once and all flows advance in
    lockstep NumPy column steps, driven through the scheme's columnar
    kernel (:mod:`repro.core.kernels` — DISCO, SAC, the ANLS family, SD
    and exact counters all expose one).  Distributionally equivalent to
    the scalar engines (same update law, hence the same estimator
    moments) but in general *not* bit-identical: it consumes a NumPy
    random stream column-major.  Fresh schemes only; arrival ``order``
    is ignored because per-flow counters are order-independent across
    flows.
``"native"``
    The vector engine's law with its per-kernel inner loops lowered to
    compiled code (:mod:`repro.core.native`): the same CSR-compiled
    trace arrays and, where the kernel pre-draws explicit uniforms, the
    same random stream, consumed by gcc/ctypes (or Numba) machine code.
    Bit-identical to ``"vector"`` for exact counters and the ANLS
    family's uniform-stream kernels; distributionally equivalent
    elsewhere.  Falls back to ``"vector"`` with a one-time warning when
    no native provider is available (or ``REPRO_DISABLE_NATIVE=1``).
``"auto"``
    ``"fast"`` when the scheme supports the exact cache, else — for
    schemes whose kernel is provably *bit-identical* to the reference
    loop (deterministic kernels such as exact counters) — ``"native"``
    when the capability probe succeeds, degrading to ``"vector"``, else
    ``"python"``.  Randomised kernels are never picked silently, so
    seeded results stay reproducible unless a caller opts in.

The documented entrypoint for all of this is the :func:`repro.replay`
facade; this module holds the engine implementations, the strict
engine resolver, and the replica/stream drivers.  (The historical
module-level ``replay()`` wrapper has been removed — call
:func:`repro.replay`; see ``docs/api.md`` for the migration.)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Union

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.metrics.errors import (
    ErrorSummary,
    relative_errors,
    relative_errors_array,
    summarize_errors,
    summarize_errors_array,
)
from repro.traces.compiled import CompiledTrace
from repro.traces.trace import Trace

__all__ = ["RunResult", "replay_replicas", "replay_stream",
           "resolve_engine", "ENGINES"]

#: Valid values of the ``engine`` parameter.
ENGINES = ("auto", "python", "fast", "vector", "native")

AnyTrace = Union[Trace, CompiledTrace]


@dataclass
class RunResult:
    """Outcome of replaying one trace through one scheme."""

    scheme_name: str
    trace_name: str
    mode: str
    errors: List[float]
    summary: ErrorSummary
    estimates: Dict[Hashable, float]
    truths: Dict[Hashable, int]
    max_counter_bits: int
    elapsed_seconds: float
    packets: int
    engine: str = "python"
    #: Per-call telemetry snapshot (:meth:`repro.obs.Telemetry.snapshot`)
    #: when the replay recorded events; ``None`` otherwise.
    telemetry: Optional[Dict[str, dict]] = None

    def estimates_dict(self) -> Dict[Hashable, float]:
        """Per-flow estimates (:class:`repro.results.MeasurementResult`)."""
        return dict(self.estimates)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready summary (:class:`repro.results.MeasurementResult`)."""
        from dataclasses import asdict

        from repro.results import estimates_json

        return {
            "type": "run",
            "scheme": self.scheme_name,
            "trace": self.trace_name,
            "mode": self.mode,
            "engine": self.engine,
            "packets": int(self.packets),
            "elapsed_seconds": float(self.elapsed_seconds),
            "max_counter_bits": int(self.max_counter_bits),
            "summary": asdict(self.summary),
            "estimates": estimates_json(self.estimates),
            "telemetry": self.telemetry,
        }


def resolve_engine(engine: str, scheme) -> str:
    """Map an ``engine`` request to the concrete engine used for ``scheme``.

    ``"auto"`` degrades gracefully; explicit requests are strict — asking
    for ``"fast"`` or ``"vector"`` with an unsupported scheme raises, so
    a benchmark never silently times the wrong path.  The scheme list in
    the ``"vector"`` error is sorted, so the message is deterministic.
    """
    from repro.core import native
    from repro.core.disco import DiscoSketch
    from repro.core.fastpath import FastDiscoSketch
    from repro.core.kernels import kernel_scheme_names, kernel_spec

    if engine not in ENGINES:
        raise ParameterError(
            f"engine must be one of {', '.join(ENGINES)}, got {engine!r}"
        )
    cacheable = isinstance(scheme, (DiscoSketch, FastDiscoSketch))
    if engine == "auto":
        if cacheable:
            return "fast"
        spec = kernel_spec(scheme)
        if spec is not None and spec.bit_identical:
            # Same trajectories either way (bit-identical kernels), so
            # auto may take the compiled path when the probe passes.
            return "native" if native.available() else "vector"
        return "python"
    if engine == "fast" and not cacheable:
        raise ParameterError(
            f"engine='fast' needs a DISCO sketch, got {type(scheme).__name__}"
        )
    if engine in ("vector", "native") and kernel_spec(scheme) is None:
        raise ParameterError(
            f"engine={engine!r} needs a fresh scheme with a columnar kernel; "
            f"{type(scheme).__name__} in its current configuration has none "
            f"(pre-observed flows, custom counting functions, burst "
            f"aggregation, variance tracking and custom CMAs are "
            f"scalar-only). Schemes with kernels: "
            f"{', '.join(kernel_scheme_names())}"
        )
    if engine == "native" and not native.available():
        native.warn_fallback("engine='native'")
        return "vector"
    return engine


def _replay_scalar(
    scheme,
    trace: AnyTrace,
    order: str,
    rng: Union[None, int, random.Random],
    engine: str,
    telemetry: obs.Telemetry,
) -> RunResult:
    """The per-packet engines (``python``/``fast``); ``engine`` is resolved.

    The scheme's ``mode`` attribute picks the matching ground truth
    (packets for ``"size"``, bytes for ``"volume"``).  Wall-clock time
    covers only the per-packet update loop — the quantity Table IV
    compares.
    """
    if engine == "fast" and hasattr(scheme, "enable_update_cache"):
        scheme.enable_update_cache()

    if order == "shuffled":
        # Materialised up front so shuffle cost stays out of the timing.
        telemetry.count("replay.order.shuffled")
        packets = list(trace.packet_pairs(order=order, rng=rng))
        count = len(packets)
    else:
        # Order-preserving iterations ("asis"/"sequential"/"roundrobin")
        # stream straight off the trace: no second copy of the packet
        # list, which halves peak memory on full-scale replays.
        telemetry.count("replay.order.streamed")
        packets = trace.packet_pairs(order=order, rng=rng)
        count = None
    start = time.perf_counter()
    observe = scheme.observe
    n = 0
    for flow, length in packets:
        observe(flow, length)
        n += 1
    if hasattr(scheme, "flush"):
        scheme.flush()
    elapsed = time.perf_counter() - start
    telemetry.timing("replay.update", elapsed)

    truths = trace.true_totals(scheme.mode)
    estimates = {flow: scheme.estimate(flow) for flow in truths}
    errors = relative_errors(estimates, truths)
    return RunResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=trace.name,
        mode=scheme.mode,
        errors=errors,
        summary=summarize_errors(errors),
        estimates=estimates,
        truths=truths,
        max_counter_bits=scheme.max_counter_bits(),
        elapsed_seconds=elapsed,
        packets=count if count is not None else n,
        engine=engine,
    )


def _replay_vector(
    scheme,
    trace: AnyTrace,
    rng=None,
    telemetry: obs.Telemetry = obs.NULL_TELEMETRY,
    engine: str = "vector",
    store: Optional[str] = None,
) -> RunResult:
    """Array-native replay; leaves ``scheme`` holding the final state.

    ``rng=None`` preserves the historical contract: the update stream
    comes from the scheme's own generator.  ``engine`` is the resolved
    columnar backend (``"vector"`` or ``"native"``); ``store`` the
    counter-store backend the final state round-trips through
    (:mod:`repro.core.stores`).
    """
    from repro.core.batchreplay import run_kernel
    from repro.core.kernels import kernel_spec

    spec = kernel_spec(scheme)
    result = run_kernel(
        trace,
        spec.factory,
        mode=spec.mode,
        rng=rng if rng is not None else scheme._rng,
        telemetry=telemetry,
        engine=engine,
        store=store,
    )
    telemetry.timing("replay.update", result.elapsed_seconds)
    # Hand the state back so the scheme's read-out surface (estimate /
    # flows / max_counter_bits) reflects the replay, as it would have
    # after a per-packet run.
    result.kernel.writeback(scheme, result.compiled.keys, result.packets)

    errors_arr = relative_errors_array(result.estimates, result.truths)
    estimates = result.estimates_dict()
    truths = {k: int(t) for k, t in zip(result.keys, result.truths)}
    return RunResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=trace.name,
        mode=spec.mode,
        errors=[float(e) for e in errors_arr],
        summary=summarize_errors_array(errors_arr),
        estimates=estimates,
        truths=truths,
        max_counter_bits=scheme.max_counter_bits(),
        elapsed_seconds=result.elapsed_seconds,
        packets=result.packets,
        engine=engine,
    )


def replay_replicas(
    scheme,
    trace: AnyTrace,
    replicas: int,
    rng=None,
    telemetry: Optional[obs.Telemetry] = None,
    *,
    chunked: bool = True,
    store: Optional[str] = None,
) -> List[RunResult]:
    """Replay ``replicas`` independent copies of ``scheme`` columnar.

    Each replica behaves exactly like a separately-seeded ``engine=
    "vector"`` replay of a fresh copy of ``scheme`` — replicas share
    columnar sweeps over the compiled trace, so R replays cost barely
    more than one.  Returns one :class:`RunResult` per replica (engine
    ``"vector"``, ``elapsed_seconds`` = total / R); replica 0's final
    state is written back into ``scheme``.  Equivalent to
    ``repro.replay(..., replicas=R)``.

    ``rng`` seeds the replica streams (any :func:`repro.seed_streams`
    convention, including ``random.Random`` and NumPy generators);
    ``None`` falls back to the scheme's own generator in a single pass,
    matching ``replay(..., engine="vector")``.  A seeded replay is split
    into chunks of :data:`repro.facade.REPLICA_CHUNK` replicas, one
    independent child stream per chunk via
    :func:`repro.facade.replica_chunks` — the same schedule
    :func:`~repro.harness.parallel.replay_parallel` distributes over its
    worker pool, so pooled and serial replica results are bit-identical
    for the same seed.  ``chunked=False`` runs ``rng`` as one
    already-derived chunk stream in a single pass (the parallel driver's
    worker-side entry; the chunk seeds were derived in the parent).
    ``telemetry`` scopes event recording as on the facade.
    """
    from repro.core.batchreplay import run_kernel
    from repro.core.kernels import kernel_spec
    from repro.facade import replica_chunks

    resolve_engine("vector", scheme)  # strict: raises if no kernel
    if replicas < 1:
        raise ParameterError(f"replicas must be >= 1, got {replicas!r}")
    session = obs.resolve(telemetry)
    tel = obs.Telemetry() if session.enabled else obs.NULL_TELEMETRY
    tel.count("replay.calls")
    tel.count("replay.engine.vector")
    tel.count("replay.replicas", replicas)
    spec = kernel_spec(scheme)
    if rng is None or not chunked:
        plan = [(replicas, rng if rng is not None else scheme._rng)]
    else:
        plan = replica_chunks(replicas, rng)
    if len(plan) > 1:
        tel.count("replay.replica_chunks", len(plan))

    first = None
    estimate_rows = []
    total_elapsed = 0.0
    for size, chunk_rng in plan:
        result = run_kernel(
            trace,
            spec.factory,
            mode=spec.mode,
            rng=chunk_rng,
            replicas=size,
            telemetry=tel,
            store=store,
        )
        tel.timing("replay.update", result.elapsed_seconds)
        total_elapsed += result.elapsed_seconds
        estimates = result.estimates
        if size == 1:
            estimates = estimates.reshape(1, -1)
        estimate_rows.append(estimates)
        if first is None:
            first = result
    # Replica 0 lives in the first chunk; its state becomes the scheme's.
    first.kernel.writeback(scheme, first.compiled.keys, first.packets)
    all_estimates = (estimate_rows[0] if len(estimate_rows) == 1
                     else np.vstack(estimate_rows))
    snap = None
    if tel.enabled:
        snap = tel.snapshot()
        session.merge(snap)

    truths = {k: int(t) for k, t in zip(first.keys, first.truths)}
    scheme_name = getattr(scheme, "name", type(scheme).__name__)
    max_bits = scheme.max_counter_bits()
    per_replica_elapsed = total_elapsed / replicas
    out: List[RunResult] = []
    for r in range(replicas):
        errors_arr = relative_errors_array(all_estimates[r], first.truths)
        out.append(RunResult(
            scheme_name=scheme_name,
            trace_name=trace.name,
            mode=spec.mode,
            errors=[float(e) for e in errors_arr],
            summary=summarize_errors_array(errors_arr),
            estimates={k: float(e)
                       for k, e in zip(first.keys, all_estimates[r])},
            truths=truths,
            max_counter_bits=max_bits,
            elapsed_seconds=per_replica_elapsed,
            packets=first.packets,
            engine="vector",
            telemetry=snap,
        ))
    return out


def replay_stream(scheme, packets, trace_name: str = "stream") -> RunResult:
    """Feed a ``(flow, length)`` iterable to ``scheme`` without a Trace.

    For trace files too large to hold in memory: pair it with
    :func:`repro.traces.trace_io.iter_trace_packets`.  Packets are
    consumed strictly one at a time — nothing is buffered — and ground
    truth is accumulated on the fly, so the memory footprint is one
    counter plus one truth integer per *flow*, never per packet.
    """
    truths: Dict[Hashable, int] = {}
    count = 0
    observe = scheme.observe
    start = time.perf_counter()
    for flow, length in packets:
        observe(flow, length)
        amount = 1 if scheme.mode == "size" else int(length)
        truths[flow] = truths.get(flow, 0) + amount
        count += 1
    if hasattr(scheme, "flush"):
        scheme.flush()
    elapsed = time.perf_counter() - start
    estimates = {flow: scheme.estimate(flow) for flow in truths}
    errors = relative_errors(estimates, truths)
    return RunResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=trace_name,
        mode=scheme.mode,
        errors=errors,
        summary=summarize_errors(errors),
        estimates=estimates,
        truths=truths,
        max_counter_bits=scheme.max_counter_bits(),
        elapsed_seconds=elapsed,
        packets=count,
        engine="python",
    )
