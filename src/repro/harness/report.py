"""Markdown report generator: rerun the evaluation, write paper-vs-measured.

``generate_report`` reruns the accuracy experiments (Figures 5-8, Tables
II-III) and the IXP throughput table on one set of workloads and renders a
self-contained markdown document — the mechanism behind keeping
EXPERIMENTS.md honest, and a one-call artefact for anyone re-running the
reproduction on their own scale parameters.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Union

from repro.harness.experiments import (
    error_cdf_comparison,
    table2,
    table3,
    volume_error_vs_counter_size,
)
from repro.metrics.errors import optimistic_relative_error
from repro.traces.registry import make_trace
from repro.traces.trace import Trace

__all__ = ["ReportConfig", "generate_report", "write_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Workload scales for one report run."""

    nlanr_flows: int = 400
    scenario_flows: int = 150
    counter_sizes: tuple = (8, 9, 10)
    ixp_packets: int = 40_000
    seed: int = 7
    include_ixp: bool = True
    #: Record the calibration replay through :class:`repro.obs.Telemetry`
    #: and append its event counts as a "Replay telemetry" section.
    include_telemetry: bool = False


def _md_table(headers, rows) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "---|" * len(headers)]
    for row in rows:
        cells = [
            f"{cell:.4f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def generate_report(config: ReportConfig = ReportConfig()) -> str:
    """Run the evaluation and return the markdown report text."""
    out = io.StringIO()
    out.write("# DISCO reproduction report\n\n")
    out.write(f"Workloads: NLANR-like {config.nlanr_flows} flows; scenarios "
              f"{config.scenario_flows} flows; seed {config.seed}.\n\n")

    trace = make_trace("nlanr", num_flows=config.nlanr_flows,
                       mean_flow_bytes=30_000, max_flow_bytes=3_000_000,
                       seed=config.seed)
    stats = trace.stats()
    out.write(f"NLANR-like trace: {stats.num_packets} packets, "
              f"{stats.total_bytes / 1e6:.1f} MB, mean flow "
              f"{stats.mean_flow_bytes / 1e3:.1f} KB.\n\n")

    # Figures 5-7.
    out.write("## Error vs counter size (Figures 5-7)\n\n")
    sweep = volume_error_vs_counter_size(
        trace, counter_sizes=config.counter_sizes, seed=config.seed
    )
    out.write(_md_table(
        ["bits", "DISCO avg", "SAC avg", "DISCO max", "SAC max",
         "DISCO R_o(.95)", "SAC R_o(.95)"],
        [[r.counter_bits, r.disco.average, r.sac.average, r.disco.maximum,
          r.sac.maximum, r.disco.optimistic_95, r.sac.optimistic_95]
         for r in sweep],
    ))
    out.write("\n\n")

    # Figure 8.
    out.write("## Error CDF at 10 bits (Figure 8)\n\n")
    cdf = error_cdf_comparison(trace, counter_bits=10, seed=config.seed)
    for scheme in ("disco", "sac"):
        errors = cdf[f"{scheme}_errors"]
        out.write(f"* {scheme.upper()}: 90% of flows under "
                  f"{optimistic_relative_error(errors, 0.90):.4f}, all under "
                  f"{max(errors):.4f}\n")
    out.write("\n")

    # Table II.
    out.write("## Average error per scenario (Table II)\n\n")
    traces: Dict[str, Trace] = {
        "scenario1": make_trace("scenario1", num_flows=config.scenario_flows,
                                seed=config.seed + 1, max_flow_packets=20_000),
        "scenario2": make_trace("scenario2", num_flows=config.scenario_flows,
                                seed=config.seed + 2),
        "scenario3": make_trace("scenario3", num_flows=config.scenario_flows,
                                seed=config.seed + 3),
        "real-like": trace,
    }
    rows = table2(traces, counter_sizes=config.counter_sizes, seed=config.seed)
    out.write(_md_table(
        ["scenario", "bits", "SAC avg R", "DISCO avg R"],
        [[r["scenario"], r["counter_bits"], r["sac_avg_error"],
          r["disco_avg_error"]] for r in rows],
    ))
    out.write("\n\n")

    # Table III.
    out.write("## ANLS-I failure (Table III)\n\n")
    rows3 = table3(traces, seed=config.seed)
    out.write(_md_table(
        ["scenario", "var>10 fraction", "ANLS-I avg R"],
        [[r["scenario"], r["length_variance_over_10_fraction"],
          r["anls1_avg_error"]] for r in rows3],
    ))
    out.write("\n\n")

    # Figure 9.
    out.write("## Counter bits vs flow volume (Figure 9)\n\n")
    from repro.harness.experiments import counter_bits_vs_volume

    fig9 = counter_bits_vs_volume([10**k for k in range(3, 10, 2)], b=1.002)
    out.write(_md_table(
        ["volume", "SD bits", "SAC bits", "DISCO bits"],
        [[f"{r['volume']:.0e}", r["sd_bits"], r["sac_bits"], r["disco_bits"]]
         for r in fig9],
    ))
    out.write("\n\n")

    # Error-bar calibration.
    out.write("## Error-bar calibration (95% band)\n\n")
    import math as _math

    from repro.core.analysis import choose_b as _choose_b
    from repro.core.disco import DiscoSketch as _Sketch
    from repro.facade import replay as _replay
    from repro.metrics.calibration import calibrate as _calibrate

    cal_b = _choose_b(12, max(trace.true_totals("volume").values()), slack=1.5)
    cal_sketch = _Sketch(b=cal_b, mode="volume", rng=config.seed + 9,
                         track_variance=True)
    cal_tel = None
    if config.include_telemetry:
        from repro.obs import Telemetry as _Telemetry

        cal_tel = _Telemetry()
    _replay(cal_sketch, trace, rng=config.seed + 10, telemetry=cal_tel)
    samples = []
    for flow, truth in trace.true_totals("volume").items():
        estimate = cal_sketch.estimate(flow)
        sigma = _math.sqrt(cal_sketch.variance_of(flow))
        samples.append((estimate, float(truth), sigma))
    report = _calibrate(samples, level=0.95)
    out.write(f"Tracked-variance model over {report.flows} flows: "
              f"{report.coverage_1sigma:.3f} within 1 sigma, "
              f"{report.coverage_at_level:.3f} within the 95% band "
              f"(rms z = {report.rms_z:.3f}).\n\n")

    # Replay telemetry (optional observability appendix).
    if cal_tel is not None:
        snap = cal_tel.snapshot()
        out.write("## Replay telemetry (calibration replay)\n\n")
        out.write(_md_table(
            ["event", "count"],
            [[name, snap["counters"][name]]
             for name in sorted(snap["counters"])],
        ))
        out.write("\n\n")

    # Table V.
    if config.include_ixp:
        from repro.ixp.throughput import run_table5

        out.write("## IXP throughput (Table V)\n\n")
        rows5 = run_table5(num_packets=config.ixp_packets, seed=config.seed)
        out.write(_md_table(
            ["burst", "# ME", "avg R", "Gbps"],
            [[r.burst_description, r.num_mes, r.error, r.throughput_gbps]
             for r in rows5],
        ))
        out.write("\n")
    return out.getvalue()


def write_report(path: Union[str, Path],
                 config: ReportConfig = ReportConfig()) -> Path:
    """Generate the report and write it to ``path``; returns the path."""
    path = Path(path)
    path.write_text(generate_report(config), encoding="utf-8")
    return path
