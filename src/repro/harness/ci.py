"""Metric regression gate: compare key reproduction metrics to a baseline.

The benchmarks assert *shapes*; this module pins *numbers*.  A baseline
JSON stores named metrics with per-metric tolerances; `compare` re-derives
them and reports drifts.  `collect_metrics` computes a small, fast set of
headline metrics (deterministic seeds) so the gate runs in seconds —
suitable for CI on every commit, unlike the full benchmark suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ParameterError

__all__ = ["MetricDrift", "collect_metrics", "save_baseline", "compare"]

#: Relative tolerance per metric; metrics not listed use DEFAULT_TOLERANCE.
TOLERANCES: Dict[str, float] = {
    "ixp_gbps_1me": 0.02,          # deterministic model
    "fig01_counter_b101": 0.05,    # Monte-Carlo mean over fixed seeds
    "disco_avg_error_10bit": 0.25,  # statistical, fixed seeds
    "sac_avg_error_10bit": 0.25,
    "theorem2_bound_b1002": 1e-6,   # analytic
}
DEFAULT_TOLERANCE = 0.10


def collect_metrics() -> Dict[str, float]:
    """Recompute the headline metrics with pinned seeds (fast: ~5 s)."""
    import statistics

    from repro.core.analysis import choose_b, cov_bound
    from repro.core.disco import DiscoCounter, DiscoSketch
    from repro.counters.sac import SmallActiveCounters
    from repro.facade import replay
    from repro.ixp.throughput import run_one
    from repro.traces import make_trace

    metrics: Dict[str, float] = {}
    metrics["theorem2_bound_b1002"] = cov_bound(1.002)

    counters = []
    for seed in range(100):
        counter = DiscoCounter(b=1.01, rng=seed)
        counter.add_many(float(l) for l in (81, 1420, 142, 691))
        counters.append(counter.value)
    metrics["fig01_counter_b101"] = statistics.mean(counters)

    trace = make_trace("nlanr", num_flows=150, mean_flow_bytes=25_000,
                       max_flow_bytes=1_000_000, seed=404)
    truths = trace.true_totals("volume")
    b = choose_b(10, max(truths.values()), slack=1.5)
    disco = DiscoSketch(b=b, mode="volume", rng=405, capacity_bits=10)
    sac = SmallActiveCounters(total_bits=10, mode_bits=3, mode="volume",
                              rng=406)
    metrics["disco_avg_error_10bit"] = replay(
        disco, trace, rng=407
    ).summary.average
    metrics["sac_avg_error_10bit"] = replay(
        sac, trace, rng=407
    ).summary.average

    metrics["ixp_gbps_1me"] = run_one(
        num_mes=1, burst_max=1, num_packets=4000, rng=0
    ).throughput_gbps
    return metrics


@dataclass(frozen=True)
class MetricDrift:
    """One metric's deviation from the baseline."""

    name: str
    baseline: float
    current: float
    tolerance: float

    @property
    def relative_drift(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return abs(self.current - self.baseline) / abs(self.baseline)

    @property
    def within_tolerance(self) -> bool:
        return self.relative_drift <= self.tolerance


def save_baseline(path: Union[str, Path],
                  metrics: Optional[Dict[str, float]] = None) -> Path:
    """Write (or refresh) the baseline file."""
    path = Path(path)
    payload = metrics if metrics is not None else collect_metrics()
    path.write_text(json.dumps(payload, indent=1, sort_keys=True),
                    encoding="utf-8")
    return path


def compare(path: Union[str, Path],
            metrics: Optional[Dict[str, float]] = None) -> List[MetricDrift]:
    """Compare current metrics to the stored baseline.

    Raises :class:`ParameterError` if the baseline is missing a metric or
    contains unknown ones (the baseline must be regenerated deliberately,
    never silently partial).  Keys starting with ``perf_`` are throughput
    numbers owned by the *performance* gate (``benchmarks/perf_gate.py``)
    — they share the baseline file but are machine-dependent, so this
    accuracy gate skips them on both sides.
    """
    path = Path(path)
    if not path.exists():
        raise ParameterError(f"no baseline at {path}; run save_baseline first")
    baseline = json.loads(path.read_text(encoding="utf-8"))
    baseline = {k: v for k, v in baseline.items() if not k.startswith("perf_")}
    current = metrics if metrics is not None else collect_metrics()
    current = {k: v for k, v in current.items() if not k.startswith("perf_")}
    if set(baseline) != set(current):
        raise ParameterError(
            f"baseline/current metric sets differ: "
            f"{sorted(set(baseline) ^ set(current))}"
        )
    return [
        MetricDrift(
            name=name,
            baseline=float(baseline[name]),
            current=float(current[name]),
            tolerance=TOLERANCES.get(name, DEFAULT_TOLERANCE),
        )
        for name in sorted(baseline)
    ]
