"""Experiment functions — one per table/figure of the evaluation section.

Each function returns plain data structures (lists of rows, series of
points) so benchmarks can both print the paper's rows and assert on the
qualitative shape.  ``b`` is always selected by
:func:`repro.core.analysis.choose_b` from the workload's actual maximum
flow length and the counter budget, which is the fair fixed-counter-size
comparison the paper runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import choose_b, expected_counter_upper_bound
from repro.core.disco import DiscoSketch
from repro.core.functions import GeometricCountingFunction
from repro.counters.anls import AnlsBytesNaive, AnlsPerUnit
from repro.counters.sac import SmallActiveCounters
from repro.facade import replay
from repro.harness.runner import RunResult
from repro.metrics.errors import ErrorSummary, error_cdf as _error_cdf
from repro.metrics.memory import (
    disco_counter_bits,
    full_counter_bits,
    sac_counter_bits,
)
from repro.traces.trace import Trace

__all__ = [
    "SizeComparisonRow",
    "volume_error_vs_counter_size",
    "error_cdf_comparison",
    "counter_bits_vs_volume",
    "flow_size_per_flow_error",
    "table2",
    "table3",
    "table4",
    "bound_gap",
    "make_disco",
    "make_sac",
]

#: Headroom left above the largest flow when selecting ``b`` — the counter
#: value is random, so the capacity target sits above the observed maximum.
DEFAULT_SLACK = 1.5

#: SAC exponent-part width used throughout the evaluation (Section V-A).
SAC_MODE_BITS = 3


def make_disco(counter_bits: int, max_flow_length: float, mode: str,
               seed: Optional[int] = None, slack: float = DEFAULT_SLACK) -> DiscoSketch:
    """A DISCO sketch sized for the given counter budget."""
    b = choose_b(counter_bits, max_flow_length, slack=slack)
    return DiscoSketch(b=b, mode=mode, rng=seed, capacity_bits=counter_bits)


def make_sac(counter_bits: int, mode: str, seed: Optional[int] = None) -> SmallActiveCounters:
    """A SAC array with the evaluation's fixed 3-bit exponent part."""
    return SmallActiveCounters(
        total_bits=counter_bits, mode_bits=SAC_MODE_BITS, mode=mode, rng=seed
    )


@dataclass(frozen=True)
class SizeComparisonRow:
    """DISCO-vs-SAC error summaries at one counter size.

    ``ice`` and ``aee`` carry the beyond-the-paper comparators (ICE
    Buckets, AEE) when the sweep includes them; they default to ``None``
    so rows built by older callers stay valid.
    """

    counter_bits: int
    disco: ErrorSummary
    sac: ErrorSummary
    disco_b: float
    ice: Optional[ErrorSummary] = None
    aee: Optional[ErrorSummary] = None


def volume_error_vs_counter_size(
    trace: Trace,
    counter_sizes: Sequence[int] = (8, 9, 10, 11, 12),
    seed: int = 7,
    mode: str = "volume",
    engine: str = "auto",
) -> List[SizeComparisonRow]:
    """Figures 5-7 / Table II core: error vs counter size, DISCO vs SAC.

    ``engine`` selects the replay engine for *both* schemes — SAC has a
    columnar kernel too, so ``"vector"`` replays the whole comparison
    array-natively with the same update laws (statistically, not
    bit-for-bit, identical to the per-packet path); ``"python"`` forces
    the reference loops for auditing.
    """
    from repro.schemes import make_scheme

    truths = trace.true_totals(mode)
    max_length = max(truths.values())
    rows: List[SizeComparisonRow] = []
    for bits in counter_sizes:
        b = choose_b(bits, max_length, slack=DEFAULT_SLACK)
        disco = DiscoSketch(b=b, mode=mode, rng=seed, capacity_bits=bits)
        sac = make_sac(bits, mode, seed=seed + 1)
        ice = make_scheme("ice", bits=bits, mode=mode, seed=seed + 3)
        aee = make_scheme("aee", bits=bits, mode=mode, seed=seed + 4,
                          max_length=max_length)
        disco_result = replay(disco, trace, rng=seed + 2, engine=engine)
        sac_result = replay(sac, trace, rng=seed + 2, engine=engine)
        ice_result = replay(ice, trace, rng=seed + 2, engine=engine)
        aee_result = replay(aee, trace, rng=seed + 2, engine=engine)
        rows.append(
            SizeComparisonRow(
                counter_bits=bits,
                disco=disco_result.summary,
                sac=sac_result.summary,
                disco_b=b,
                ice=ice_result.summary,
                aee=aee_result.summary,
            )
        )
    return rows


def error_cdf_comparison(
    trace: Trace,
    counter_bits: int = 10,
    seed: int = 7,
    points: int = 200,
    mode: str = "volume",
    engine: str = "auto",
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 8: empirical CDF of relative error at a fixed counter size.

    ``engine`` applies to both schemes (both have columnar kernels).
    """
    from repro.schemes import make_scheme

    truths = trace.true_totals(mode)
    max_length = max(truths.values())
    disco = make_disco(counter_bits, max_length, mode, seed=seed)
    sac = make_sac(counter_bits, mode, seed=seed + 1)
    ice = make_scheme("ice", bits=counter_bits, mode=mode, seed=seed + 3)
    aee = make_scheme("aee", bits=counter_bits, mode=mode, seed=seed + 4,
                      max_length=max_length)
    disco_result = replay(disco, trace, rng=seed + 2, engine=engine)
    sac_result = replay(sac, trace, rng=seed + 2, engine=engine)
    ice_result = replay(ice, trace, rng=seed + 2, engine=engine)
    aee_result = replay(aee, trace, rng=seed + 2, engine=engine)
    return {
        "disco": _error_cdf(disco_result.errors, points=points),
        "sac": _error_cdf(sac_result.errors, points=points),
        "ice": _error_cdf(ice_result.errors, points=points),
        "aee": _error_cdf(aee_result.errors, points=points),
        "disco_errors": disco_result.errors,
        "sac_errors": sac_result.errors,
        "ice_errors": ice_result.errors,
        "aee_errors": aee_result.errors,
    }


def counter_bits_vs_volume(
    volumes: Sequence[float],
    b: float = 1.002,
    sac_estimation_bits: int = 5,
) -> List[Dict[str, float]]:
    """Figure 9: counter bits required by SD, SAC and DISCO per flow volume."""
    rows = []
    for n in volumes:
        rows.append(
            {
                "volume": float(n),
                "sd_bits": full_counter_bits(n),
                "sac_bits": sac_counter_bits(n, estimation_bits=sac_estimation_bits),
                "disco_bits": disco_counter_bits(n, b),
                "disco_counter_value": expected_counter_upper_bound(b, n),
            }
        )
    return rows


def flow_size_per_flow_error(
    trace: Trace,
    counter_bits: int = 10,
    seed: int = 7,
    engine: str = "auto",
) -> Dict[str, List[Tuple[int, float]]]:
    """Figure 10: per-flow relative error for flow **size** counting.

    Returns, for each scheme, ``(true_flow_size, relative_error)`` pairs —
    the scatter the figure plots.
    """
    truths = trace.true_totals("size")
    max_length = max(truths.values())
    disco = make_disco(counter_bits, max_length, "size", seed=seed)
    sac = make_sac(counter_bits, "size", seed=seed + 1)
    disco_result = replay(disco, trace, rng=seed + 2, engine=engine)
    sac_result = replay(sac, trace, rng=seed + 2, engine=engine)

    def scatter(result: RunResult) -> List[Tuple[int, float]]:
        pairs = []
        for (flow, truth), err in zip(result.truths.items(), result.errors):
            pairs.append((int(truth), err))
        pairs.sort()
        return pairs

    return {"disco": scatter(disco_result), "sac": scatter(sac_result)}


def table2(
    traces: Dict[str, Trace],
    counter_sizes: Sequence[int] = (8, 9, 10),
    seed: int = 7,
    engine: str = "auto",
) -> List[Dict[str, object]]:
    """Table II: average relative error per scenario and counter size."""
    rows: List[Dict[str, object]] = []
    for name, trace in traces.items():
        comparison = volume_error_vs_counter_size(
            trace, counter_sizes=counter_sizes, seed=seed, engine=engine
        )
        for row in comparison:
            rows.append(
                {
                    "scenario": name,
                    "counter_bits": row.counter_bits,
                    "sac_avg_error": row.sac.average,
                    "disco_avg_error": row.disco.average,
                    "ice_avg_error": row.ice.average,
                    "aee_avg_error": row.aee.average,
                }
            )
    return rows


def table3(
    traces: Dict[str, Trace],
    counter_bits: int = 10,
    seed: int = 7,
) -> List[Dict[str, float]]:
    """Table III: ANLS-I average relative error plus length-variance stats."""
    rows = []
    for name, trace in traces.items():
        stats = trace.stats()
        truths = trace.true_totals("volume")
        max_length = max(truths.values())
        b = choose_b(counter_bits, max_length, slack=DEFAULT_SLACK)
        anls1 = AnlsBytesNaive(b=b, mode="volume", rng=seed)
        result = replay(anls1, trace, rng=seed + 2)
        rows.append(
            {
                "scenario": name,
                "length_variance_over_10_fraction": stats.length_variance_over_10_fraction,
                "mean_length_variance": stats.mean_length_variance,
                "anls1_avg_error": result.summary.average,
            }
        )
    return rows


def table4(
    traces: Dict[str, Trace],
    counter_bits: int = 10,
    seed: int = 7,
) -> List[Dict[str, float]]:
    """Table IV: execution-time ratio of ANLS-II over DISCO per trace.

    Both schemes process the identical packet sequence with the same ``b``;
    the ratio grows with the traces' mean flow length because ANLS-II's
    per-packet cost is O(packet bytes).
    """
    rows = []
    for name, trace in traces.items():
        truths = trace.true_totals("volume")
        max_length = max(truths.values())
        b = choose_b(counter_bits, max_length, slack=DEFAULT_SLACK)
        disco = DiscoSketch(b=b, mode="volume", rng=seed)
        anls2 = AnlsPerUnit(b=b, mode="volume", rng=seed)
        disco_result = replay(disco, trace, rng=seed + 2)
        anls2_result = replay(anls2, trace, rng=seed + 2)
        ratio = (
            anls2_result.elapsed_seconds / disco_result.elapsed_seconds
            if disco_result.elapsed_seconds > 0
            else float("inf")
        )
        rows.append(
            {
                "scenario": name,
                "mean_flow_packets": trace.stats().mean_flow_packets,
                "mean_packet_length": trace.stats().mean_packet_length,
                "disco_seconds": disco_result.elapsed_seconds,
                "anls2_seconds": anls2_result.elapsed_seconds,
                "ratio": ratio,
            }
        )
    return rows


def bound_gap(
    b: float = 1.02,
    flow_lengths: Sequence[int] = (100, 300, 1000, 3000, 10_000, 30_000, 100_000),
    runs: int = 50,
    seed: int = 7,
    theta: float = 1.0,
) -> List[Dict[str, float]]:
    """Figure 4: gap between the Theorem-3 bound and the mean counter value.

    Runs DISCO ``runs`` times per flow length (the paper uses 50) and
    reports the absolute gap ``f^{-1}(n) - mean(c)`` and the relative gap
    (absolute gap over ``n``).
    """
    from repro.core.fastsim import simulate_uniform_stream

    fn = GeometricCountingFunction(b)
    rand = random.Random(seed)
    rows = []
    for n in flow_lengths:
        count = int(n / theta)
        finals = [
            simulate_uniform_stream(fn, theta, count, rng=rand) for _ in range(runs)
        ]
        mean_counter = sum(finals) / len(finals)
        bound = fn.inverse(count * theta)
        gap = bound - mean_counter
        rows.append(
            {
                "flow_length": float(n),
                "bound": bound,
                "mean_counter": mean_counter,
                "absolute_gap": gap,
                "relative_gap": gap / n,
            }
        )
    return rows
