"""Generic parameter-sweep runner.

The evaluation is full of grids — counter sizes x schemes, b x workloads,
MEs x burst modes.  ``Sweep`` runs a callable over the cartesian product
of named parameter axes, collects per-point results, and renders/filters
them, so ad-hoc experiment scripts don't each reinvent the three nested
loops and the result table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import ParameterError
from repro.harness.formatting import render_table

__all__ = ["SweepPoint", "Sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameters used and what the run returned."""

    params: Dict[str, Any]
    result: Any

    def __getitem__(self, key: str) -> Any:
        return self.params[key]


class Sweep:
    """Cartesian-product experiment runner.

    Parameters
    ----------
    axes:
        Mapping of parameter name to the values it sweeps over.
    runner:
        Callable invoked with one keyword argument per axis; its return
        value is stored verbatim in the corresponding
        :class:`SweepPoint`.

    Examples
    --------
    >>> sweep = Sweep(
    ...     axes={"bits": [8, 10], "scheme": ["disco", "sac"]},
    ...     runner=lambda bits, scheme: bits if scheme == "disco" else -bits,
    ... )
    >>> len(sweep.run())
    4
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        runner: Callable[..., Any],
    ) -> None:
        if not axes:
            raise ParameterError("at least one axis is required")
        for name, values in axes.items():
            if not list(values):
                raise ParameterError(f"axis {name!r} has no values")
        self.axes = {name: list(values) for name, values in axes.items()}
        self.runner = runner
        self._points: List[SweepPoint] = []

    @property
    def size(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def run(self, progress: Optional[Callable[[SweepPoint], None]] = None
            ) -> List[SweepPoint]:
        """Execute the full grid; returns (and stores) the points."""
        names = list(self.axes)
        self._points = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            params = dict(zip(names, combo))
            point = SweepPoint(params=params, result=self.runner(**params))
            self._points.append(point)
            if progress is not None:
                progress(point)
        return self._points

    @property
    def points(self) -> List[SweepPoint]:
        return list(self._points)

    def where(self, **fixed: Any) -> List[SweepPoint]:
        """Points whose parameters match every given value."""
        return [
            p for p in self._points
            if all(p.params.get(k) == v for k, v in fixed.items())
        ]

    def column(self, extract: Callable[[Any], Any], **fixed: Any) -> List[Any]:
        """Extract one value per matching point, in run order."""
        return [extract(p.result) for p in self.where(**fixed)]

    def table(self, columns: Mapping[str, Callable[[SweepPoint], Any]]) -> str:
        """Render all points with the axis values plus derived columns."""
        if not self._points:
            raise ParameterError("run() the sweep first")
        names = list(self.axes)
        headers = names + list(columns)
        rows = [
            [p.params[n] for n in names] + [fn(p) for fn in columns.values()]
            for p in self._points
        ]
        return render_table(headers, rows)
