"""Monte-Carlo measurement toolkit: empirical bias/variance of estimators.

Wraps the vectorised replica engine into the measurements theory sections
make claims about: estimator bias (Theorem 1 says zero), coefficient of
variation (Theorem 2 bounds it), and their convergence with the number of
replicas.  Used by the Theorem-1 verification benchmark and available for
studying any packet-length workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.analysis import cov_bound
from repro.core.functions import GeometricCountingFunction
from repro.core.vectorized import simulate_replicas
from repro.errors import ParameterError

__all__ = ["BiasVarianceReport", "TraceReplicaReport", "measure_estimator",
           "measure_trace_estimator", "convergence_table"]


@dataclass(frozen=True)
class BiasVarianceReport:
    """Empirical estimator quality over many replicas of one sequence."""

    truth: float
    replicas: int
    mean_estimate: float
    variance: float
    mean_counter: float

    @property
    def bias(self) -> float:
        return self.mean_estimate - self.truth

    @property
    def relative_bias(self) -> float:
        return self.bias / self.truth if self.truth else 0.0

    @property
    def cov(self) -> float:
        """Empirical coefficient of variation of the estimator."""
        if self.mean_estimate == 0:
            return 0.0
        return math.sqrt(self.variance) / self.mean_estimate

    @property
    def bias_stderr(self) -> float:
        """Standard error of the bias estimate (for significance checks)."""
        return math.sqrt(self.variance / self.replicas)

    def bias_significant(self, z: float = 3.0) -> bool:
        """True when the measured bias exceeds ``z`` standard errors."""
        if self.bias_stderr == 0:
            return self.bias != 0
        return abs(self.bias) > z * self.bias_stderr


def measure_estimator(
    b: float,
    lengths: Sequence[float],
    replicas: int = 400,
    rng=None,
) -> BiasVarianceReport:
    """Run ``replicas`` independent DISCO passes over ``lengths``.

    Returns the empirical bias/variance of ``f(c_final)`` against the true
    total — the direct experimental check of Theorem 1.
    """
    if replicas < 2:
        raise ParameterError(f"replicas must be >= 2, got {replicas!r}")
    if not lengths:
        raise ParameterError("at least one packet is required")
    counters = simulate_replicas(b, lengths, replicas=replicas, rng=rng)
    fn = GeometricCountingFunction(b)
    estimates = np.array([fn.value(int(c)) for c in counters])
    return BiasVarianceReport(
        truth=float(sum(lengths)),
        replicas=replicas,
        mean_estimate=float(estimates.mean()),
        variance=float(estimates.var()),
        mean_counter=float(counters.mean()),
    )


@dataclass(frozen=True)
class TraceReplicaReport:
    """Per-flow estimator quality over R replicas of one (scheme, trace).

    Arrays are aligned with ``keys`` (the compiled trace's flow order).
    This is the many-seed analogue of a single
    :class:`~repro.harness.runner.RunResult`: instead of one noisy error
    per flow, each flow gets an empirical mean/variance over R
    independent replays — the shape Figures like the error CDF need to
    be stable at paper scale.
    """

    scheme_name: str
    trace_name: str
    replicas: int
    keys: list
    truths: np.ndarray          # (F,)
    mean_estimates: np.ndarray  # (F,)
    variances: np.ndarray       # (F,)

    def relative_bias(self) -> np.ndarray:
        """Per-flow (mean estimate - truth) / truth."""
        safe = np.where(self.truths > 0, self.truths, 1.0)
        return (self.mean_estimates - self.truths) / safe

    def cov(self) -> np.ndarray:
        """Per-flow empirical coefficient of variation of the estimator."""
        safe = np.where(self.mean_estimates != 0, self.mean_estimates, 1.0)
        out = np.sqrt(self.variances) / np.abs(safe)
        return np.where(self.mean_estimates != 0, out, 0.0)

    def flow_report(self, index: int) -> BiasVarianceReport:
        """One flow's measurements as a scalar report."""
        return BiasVarianceReport(
            truth=float(self.truths[index]),
            replicas=self.replicas,
            mean_estimate=float(self.mean_estimates[index]),
            variance=float(self.variances[index]),
            mean_counter=float("nan"),
        )


def measure_trace_estimator(
    scheme,
    trace,
    replicas: int = 200,
    rng=None,
    telemetry=None,
) -> TraceReplicaReport:
    """Measure ``scheme``'s estimator over R replicas of a whole trace.

    Runs the columnar replica axis (one compiled-trace sweep advances all
    R replicas), so this is the trace-level counterpart of
    :func:`measure_estimator` — empirical per-flow bias and variance for
    *any* scheme with a kernel, not just DISCO on a single sequence.
    ``rng`` seeds the shared replica stream (``None`` uses the scheme's
    own generator).  ``telemetry`` scopes event recording to a
    :class:`repro.obs.Telemetry` session (``None`` = the ambient global
    registry).
    """
    from repro.core.batchreplay import run_kernel
    from repro.core.kernels import kernel_spec

    if replicas < 2:
        raise ParameterError(f"replicas must be >= 2, got {replicas!r}")
    spec = kernel_spec(scheme)
    if spec is None:
        raise ParameterError(
            f"{type(scheme).__name__} has no columnar kernel; "
            f"measure_trace_estimator needs the vector path"
        )
    result = run_kernel(
        trace, spec.factory, mode=spec.mode,
        rng=rng if rng is not None else scheme._rng,
        replicas=replicas,
        telemetry=telemetry,
    )
    return TraceReplicaReport(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        trace_name=getattr(trace, "name", "trace"),
        replicas=replicas,
        keys=list(result.keys),
        truths=result.truths.astype(np.float64),
        mean_estimates=result.estimates.mean(axis=0),
        variances=result.estimates.var(axis=0),
    )


def convergence_table(
    b: float,
    lengths: Sequence[float],
    replica_counts: Sequence[int] = (50, 200, 800),
    rng=None,
) -> List[BiasVarianceReport]:
    """Bias/variance at increasing replica counts (Monte-Carlo convergence)."""
    if not replica_counts:
        raise ParameterError("at least one replica count is required")
    reports = []
    for i, replicas in enumerate(replica_counts):
        seed = None if rng is None else (rng if isinstance(rng, int) else None)
        reports.append(measure_estimator(
            b, lengths, replicas=replicas,
            rng=None if seed is None else seed + i,
        ))
    return reports


def cov_within_bound(report: BiasVarianceReport, b: float,
                     slack: float = 1.15) -> bool:
    """Whether the empirical CoV respects Corollary 1 (with MC slack)."""
    return report.cov <= cov_bound(b) * slack
