"""Scenario-matrix runner: scheme × scenario × memory budget.

The paper's evaluation replays a handful of fixed workloads; the matrix
widens it to the :mod:`repro.traces.toolkit` stress scenarios — flow
churn, bursty on/off traffic, adversarial counter-stressing flows, a
renormalized merge of the three synthetic scenarios, and the NLANR-like
backbone — and sweeps every shootout scheme over every scenario at
several counter-word budgets, through both the one-shot replay path
(vector, plus the compiled native engine when available) and the
epoch-rotating stream path.

Every workload is built through the public registry
(:func:`repro.traces.make_trace`) or composed from registry products
with :func:`~repro.traces.toolkit.merge_traces` /
:func:`~repro.traces.toolkit.renormalize`, so the matrix doubles as the
registry's integration test.

Run it via the CLI (the dual of ``bench_shootout.py``'s ``__main__``
mode)::

    python -m repro scenarios --quick    # <60s, regenerates docs/scenarios.md
    python -m repro scenarios            # full sweep (make scenarios)

Both modes rewrite the generated report (default ``docs/scenarios.md``;
``--out`` overrides).  Under pytest, ``tests/harness/test_scenarios.py``
keeps the harness honest on a tiny matrix.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "DOC_PATH",
    "SCHEMES",
    "LABELS",
    "scenario_names",
    "build_scenario",
    "build_sized_scheme",
    "run_matrix",
    "render_ascii",
    "render_markdown",
]

SEED = 20100621

#: The committed, generated report both CLI modes rewrite by default.
DOC_PATH = Path(__file__).resolve().parents[3] / "docs" / "scenarios.md"

#: Counter-word budgets swept in full / quick mode.
FULL_BUDGETS = (8, 12, 16)
QUICK_BUDGETS = (8, 12)
FULL_SEEDS = 2
QUICK_SEEDS = 1

#: The shootout field: every registered comparator with a columnar
#: kernel, in presentation order (mirrors benchmarks/bench_shootout.py).
SCHEMES = ("disco", "sac", "anls2", "sd", "ice", "aee")
LABELS = {
    "disco": "DISCO",
    "sac": "SAC",
    "anls2": "ANLS",
    "sd": "SD",
    "ice": "ICE",
    "aee": "AEE",
}

#: Scenario catalogue: registry recipe + per-mode parameters.  ``mixed``
#: is composed (merge + renormalize) rather than built from one name.
_SCENARIOS: Dict[str, Dict[str, object]] = {
    "churn": {
        "summary": "per-epoch flow cohorts arriving and departing",
        "quick": dict(epochs=4, flows_per_epoch=60, mean_flow_packets=16.0),
        "full": dict(epochs=8, flows_per_epoch=120, mean_flow_packets=32.0),
    },
    "burst": {
        "summary": "on/off bursty flows (peak trains + idle markers)",
        "quick": dict(num_flows=100, mean_bursts=3.0,
                      mean_burst_packets=24.0),
        "full": dict(num_flows=300, mean_bursts=4.0,
                     mean_burst_packets=32.0),
    },
    "adversarial": {
        "summary": "bucket-concentrated elephants + saturation ramp + mice",
        "quick": dict(num_elephants=12, elephant_packets=256, num_mice=128,
                      ramp_flows=10),
        "full": dict(num_elephants=32, elephant_packets=2048, num_mice=256,
                     ramp_flows=12),
    },
    "mixed": {
        "summary": "scenario1+2+3 merged under namespaced IDs, "
                   "renormalized to a packet budget",
        "quick": dict(num_flows=30, target_pps=25_000.0),
        "full": dict(num_flows=100, target_pps=120_000.0),
    },
    "nlanr": {
        "summary": "NLANR-OC192-like heavy-tailed backbone",
        "quick": dict(num_flows=300, mean_flow_bytes=10_000.0,
                      max_flow_bytes=400_000.0),
        "full": dict(num_flows=800, mean_flow_bytes=20_000.0,
                     max_flow_bytes=2_000_000.0),
    },
}


def scenario_names() -> Tuple[str, ...]:
    """Matrix scenarios in presentation order."""
    return tuple(_SCENARIOS)


def build_scenario(name: str, quick: bool = False, seed: int = SEED):
    """Build one matrix workload (compiled form) from its catalogue entry."""
    from repro.traces import compile_trace, make_trace
    from repro.traces.toolkit import merge_traces, renormalize

    entry = _SCENARIOS.get(name)
    if entry is None:
        raise ParameterError(
            f"unknown scenario {name!r}; choose from "
            f"{', '.join(scenario_names())}"
        )
    params = dict(entry["quick" if quick else "full"])
    if name == "mixed":
        num_flows = int(params.pop("num_flows"))
        target_pps = float(params.pop("target_pps"))
        parts = [make_trace(f"scenario{i}", num_flows=num_flows, seed=seed + i)
                 for i in (1, 2, 3)]
        trace = renormalize(merge_traces(parts, namespace=True, name="mixed"),
                            target_pps=target_pps)
    else:
        trace = make_trace(name, seed=seed, **params)
    return compile_trace(trace)


def build_sized_scheme(name: str, bits: int, max_length: float, seed: int):
    """Build a scheme sized for a ``bits``-wide counter word.

    The shared sizing convention of the shootout and the matrix: SD's
    budget is its SRAM tier, SAC and ICE take the word directly, and
    DISCO / ANLS / AEE derive their estimator parameter from the
    largest flow.
    """
    from repro.schemes import make_scheme

    if name == "sd":
        return make_scheme("sd", sram_bits=bits, seed=seed)
    if name in ("sac", "ice"):
        return make_scheme(name, bits=bits, seed=seed)
    return make_scheme(name, bits=bits, max_length=max_length, seed=seed)


def _sized_factory(name: str, bits: int, max_length: float, seed: int):
    from repro.schemes import scheme_factory

    if name == "sd":
        return scheme_factory("sd", sram_bits=bits, seed=seed)
    if name in ("sac", "ice"):
        return scheme_factory(name, bits=bits, seed=seed)
    return scheme_factory(name, bits=bits, max_length=max_length, seed=seed)


def run_matrix(
    scenarios: Optional[Sequence[str]] = None,
    budgets: Sequence[int] = QUICK_BUDGETS,
    seeds: int = 1,
    quick: bool = True,
    include_native: bool = True,
    include_stream: bool = True,
) -> Tuple[List[dict], List[dict]]:
    """Sweep scheme × scenario × budget; returns (rows, scenario infos).

    Each cell replays on the vector engine ``seeds`` times (accuracy is
    averaged, throughput is the best pass), optionally once more on the
    compiled native engine, and optionally streams the same compiled
    trace through an epoch-rotating two-shard
    :class:`~repro.streaming.StreamSession`.
    """
    from repro.core import native
    from repro.facade import replay, stream

    use_native = include_native and native.available()
    names = tuple(scenarios) if scenarios else scenario_names()
    rows: List[dict] = []
    infos: List[dict] = []
    for scenario in names:
        trace = build_scenario(scenario, quick=quick)
        truths = trace.true_totals("volume")
        max_length = max(truths.values())
        infos.append({
            "scenario": scenario,
            "summary": _SCENARIOS[scenario]["summary"],
            "trace_name": trace.name,
            "flows": trace.num_flows,
            "packets": trace.num_packets,
        })
        epoch_packets = max(1, trace.num_packets // 3)
        for bits in budgets:
            for name in SCHEMES:
                avg_errors, p95_errors, pps = [], [], []
                word_bits = bits
                for s in range(seeds):
                    scheme = build_sized_scheme(name, bits, max_length,
                                                SEED + 17 + s)
                    result = replay(scheme, trace, rng=SEED + 29 + s,
                                    engine="vector")
                    avg_errors.append(result.summary.average)
                    p95_errors.append(result.summary.optimistic_95)
                    pps.append(result.packets / result.elapsed_seconds)
                    word_bits = result.max_counter_bits
                native_pps = None
                if use_native:
                    scheme = build_sized_scheme(name, bits, max_length,
                                                SEED + 17)
                    result = replay(scheme, trace, rng=SEED + 29,
                                    engine="native")
                    native_pps = result.packets / result.elapsed_seconds
                stream_pps = None
                if include_stream:
                    factory = _sized_factory(name, bits, max_length, SEED + 17)
                    sres = stream(factory, trace, shards=2,
                                  epoch_packets=epoch_packets,
                                  rng=SEED + 29, engine="vector")
                    stream_pps = sres.packets / sres.elapsed_seconds
                rows.append({
                    "scenario": scenario,
                    "scheme": LABELS[name],
                    "budget_bits": bits,
                    "word_bits": word_bits,
                    "avg_error": sum(avg_errors) / len(avg_errors),
                    "p95_error": sum(p95_errors) / len(p95_errors),
                    "vector_mpps": max(pps) / 1e6,
                    "native_mpps": None if native_pps is None
                    else native_pps / 1e6,
                    "stream_mpps": None if stream_pps is None
                    else stream_pps / 1e6,
                })
    return rows, infos


def render_ascii(rows) -> str:
    from repro.harness.formatting import render_table

    return render_table(
        ["scenario", "scheme", "budget", "word bits", "avg rel err",
         "p95 rel err", "vector Mpps", "native Mpps", "stream Mpps"],
        [[r["scenario"], r["scheme"], r["budget_bits"], r["word_bits"],
          r["avg_error"], r["p95_error"], r["vector_mpps"],
          "-" if r["native_mpps"] is None else r["native_mpps"],
          "-" if r["stream_mpps"] is None else r["stream_mpps"]]
         for r in rows],
    )


def render_markdown(rows, infos, quick: bool, seeds: int) -> str:
    """The committed ``docs/scenarios.md`` body, fully generated."""
    mode = "quick" if quick else "full"
    have_native = any(r["native_mpps"] is not None for r in rows)
    have_stream = any(r["stream_mpps"] is not None for r in rows)
    budgets = sorted({r["budget_bits"] for r in rows})
    lines = [
        "<!-- generated by repro.harness.scenarios -- do not hand-edit; "
        "run `make scenarios` (full) or `make scenarios-quick` to "
        "refresh -->",
        "",
        "# Scenario matrix: scheme × workload × memory budget",
        "",
        "Every shootout scheme, replayed over the toolkit's stress",
        "scenarios at several counter-word budgets, through the vector",
        "replay path" + (", the compiled native engine" if have_native
                         else "") +
        (" and the epoch-rotating stream path" if have_stream else "") + ".",
        "All workloads are built through the public trace registry",
        "(`repro.traces.make_trace`) or composed with",
        "`merge_traces`/`renormalize`; errors are averaged over "
        f"{seeds} seeded vector replay(s) per cell.",
        f"Generated in **{mode}** mode; budgets swept: "
        f"{', '.join(str(b) for b in budgets)} bits.",
        "",
    ]
    for info in infos:
        lines.append(f"## {info['scenario']} — {info['summary']}")
        lines.append("")
        lines.append(f"Workload `{info['trace_name']}`: "
                     f"{info['flows']} flows, {info['packets']} packets.")
        lines.append("")
        header = ("| scheme | budget | word bits | mean rel. error "
                  "| p95 rel. error | vector Mpps |")
        divider = "|---|---|---|---|---|---|"
        if have_native:
            header += " native Mpps |"
            divider += "---|"
        if have_stream:
            header += " stream Mpps |"
            divider += "---|"
        lines.append(header)
        lines.append(divider)
        for r in rows:
            if r["scenario"] != info["scenario"]:
                continue
            cells = [r["scheme"], str(r["budget_bits"]), str(r["word_bits"]),
                     f"{r['avg_error']:.4f}", f"{r['p95_error']:.4f}",
                     f"{r['vector_mpps']:.2f}"]
            if have_native:
                cells.append("-" if r["native_mpps"] is None
                             else f"{r['native_mpps']:.2f}")
            if have_stream:
                cells.append("-" if r["stream_mpps"] is None
                             else f"{r['stream_mpps']:.2f}")
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    lines += [
        "## Reading the matrix",
        "",
        "* **churn** stresses flow-table turnover: per-epoch cohorts of",
        "  short-lived flows keep the live population rotating, so",
        "  schemes pay their per-flow setup cost over and over.",
        "* **burst** swings per-epoch volume between peak trains and",
        "  idle markers; large-update accuracy dominates.",
        "* **adversarial** aims at the comparators' failure modes:",
        "  consecutive elephants concentrate in ICE's arrival-order",
        "  buckets (repeated upscales), and the geometric ramp crosses",
        "  every power-of-two word (AEE saturation, SAC exponent",
        "  escalation) while mice must stay accurate next door.",
        "* **mixed** is the composition check: the three paper scenarios",
        "  merged under namespaced flow IDs and renormalized to a fixed",
        "  packet budget via the toolkit.",
        "* **nlanr** is the continuity row — the same backbone-like",
        "  workload the shootout (docs/shootout.md) measures.",
        "",
        "The chunk-only `big` workload (100k+ flows) does not fit a",
        "one-shot replay by design; its streaming run and peak-RSS",
        "ceiling are gated in `benchmarks/perf_gate.py`.",
        "",
        "Regenerate with `make scenarios` (full) or `make",
        "scenarios-quick` (<60s; also part of `make all`).",
    ]
    return "\n".join(lines) + "\n"
