"""Parallel replay: run independent scheme/trace replays across processes.

Comparative experiments (Figures 5-7, Table II) replay the same trace
through several schemes; the replays are independent, so they
parallelise embarrassingly.  ``replay_parallel`` fans a list of jobs out
over a process pool and returns the usual
:class:`~repro.harness.runner.RunResult` objects in job order.

Jobs are specified as (factory, trace, kwargs) with a *callable factory*
rather than a live scheme so that each worker constructs its own scheme
(schemes hold ``random.Random`` state; building in-worker keeps the
parent's objects untouched and the pickling surface tiny).

Three mechanisms keep the fan-out cheap at full trace scale:

* **Persistent pool** — one module-level ``ProcessPoolExecutor`` is
  reused across ``replay_parallel`` calls (rebuilt only when the
  requested worker count changes), so repeated experiment sweeps pay the
  interpreter fork cost once, not per call.
* **Shared-memory traces** — a :class:`~repro.traces.compiled.CompiledTrace`
  above :data:`SHARE_THRESHOLD_BYTES` is published once into a
  ``multiprocessing.shared_memory`` segment; jobs then carry a tiny
  handle and every worker maps the same buffers instead of receiving a
  per-job pickle of the arrays.  Segments are unlinked automatically
  when the parent's compiled trace is garbage-collected.
* **Replica chunks** — a job with ``replicas=R`` is split into chunks of
  :data:`REPLICA_CHUNK` replicas, each advanced as one columnar
  multi-replica pass (:func:`~repro.harness.runner.replay_replicas`), so
  R independent seeded replays of one (scheme, trace) pair spread across
  workers while each chunk still amortises one trace sweep.

Degradation is always graceful: environments without working process
pools (no ``fork``/``spawn``, sandboxed ``/dev/shm``) and pools that die
mid-run (``BrokenProcessPool``) fall back to in-process execution of
whatever work is unfinished.
"""

from __future__ import annotations

import atexit
import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.facade import replay
from repro.harness.runner import RunResult, replay_replicas
from repro.traces.compiled import CompiledTrace
from repro.traces.trace import Trace

__all__ = ["ReplayJob", "replay_parallel", "shutdown_pool",
           "SHARE_THRESHOLD_BYTES", "REPLICA_CHUNK"]

#: CompiledTrace array footprint above which the trace is shipped through
#: a shared-memory segment instead of pickled per job.  Below it the
#: pickle is cheaper than a segment create + attach round-trip.
SHARE_THRESHOLD_BYTES = 1 << 18

#: Replicas advanced per multi-replica unit.  Small enough that an
#: R-replica job spreads across workers, large enough that each unit
#: still amortises one columnar trace sweep over several replicas.
REPLICA_CHUNK = 8


@dataclass(frozen=True)
class ReplayJob:
    """One replay to run: a scheme factory, a trace, and replay options.

    ``replicas > 1`` requests R independent seeded replays of the same
    (scheme, trace) pair via the columnar replica axis; the scheme must
    expose a kernel (``engine`` ``"auto"``/``"vector"``) and the job
    yields R results instead of one.  ``rng`` then seeds the replica
    streams (``order`` is ignored — the vector path is order-free).
    """

    scheme_factory: Callable[[], object]
    trace: Union[Trace, CompiledTrace]
    order: str = "shuffled"
    rng: Optional[int] = None
    engine: str = "auto"
    replicas: int = 1


# ---------------------------------------------------------------------------
# shared-memory trace shipping
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _SharedTraceRef:
    """Pickle-sized handle to a published CompiledTrace segment."""

    shm_name: str
    num_flows: int
    num_packets: int
    blob_size: int


class _SharedTraceHandle:
    """Parent-side record keeping a published segment alive."""

    __slots__ = ("shm", "ref")

    def __init__(self, shm: shared_memory.SharedMemory,
                 ref: _SharedTraceRef) -> None:
        self.shm = shm
        self.ref = ref


#: Parent-side publications, one per live CompiledTrace object.
_PUBLISHED: "weakref.WeakKeyDictionary[CompiledTrace, _SharedTraceHandle]" = \
    weakref.WeakKeyDictionary()


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    except Exception:
        pass  # already gone (interpreter teardown, double finalize)


def _publish(compiled: CompiledTrace) -> Optional[_SharedTraceRef]:
    """Publish the trace's arrays into shared memory (once per object).

    Returns ``None`` when the platform refuses shared memory — callers
    then fall back to pickling the trace per job.
    """
    handle = _PUBLISHED.get(compiled)
    if handle is not None:
        return handle.ref
    blob = pickle.dumps((compiled.name, compiled.keys),
                        protocol=pickle.HIGHEST_PROTOCOL)
    arrays = [np.ascontiguousarray(a) for a in
              (compiled.lengths, compiled.offsets, compiled.sizes,
               compiled.volumes)]
    total = sum(a.nbytes for a in arrays) + len(blob)
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    except (OSError, PermissionError):
        return None
    offset = 0
    for a in arrays:
        np.frombuffer(shm.buf, dtype=a.dtype, count=a.size,
                      offset=offset)[:] = a
        offset += a.nbytes
    shm.buf[offset:offset + len(blob)] = blob
    ref = _SharedTraceRef(shm_name=shm.name, num_flows=compiled.num_flows,
                          num_packets=compiled.num_packets,
                          blob_size=len(blob))
    _PUBLISHED[compiled] = _SharedTraceHandle(shm, ref)
    # Unlink when the parent's compiled trace dies (also runs at exit).
    weakref.finalize(compiled, _unlink_segment, shm)
    return ref


#: Worker-side attachments: segment name -> (segment, rebuilt trace).
#: Lives for the worker process lifetime, so each worker maps a given
#: trace exactly once no matter how many units replay it.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, CompiledTrace]] = {}


def _attach(ref: _SharedTraceRef) -> CompiledTrace:
    entry = _ATTACHED.get(ref.shm_name)
    if entry is None:
        # Attaching re-registers the name with the resource tracker, but
        # the tracker is shared with the parent (inherited fd) and its
        # cache is a set, so the extra register is a no-op and the
        # parent's unlink performs the single unregister.  Workers must
        # NOT unregister themselves — that would race the parent into a
        # double-unregister.
        shm = shared_memory.SharedMemory(name=ref.shm_name)
        offset = 0
        lengths = np.frombuffer(shm.buf, dtype=np.float64,
                                count=ref.num_packets, offset=offset)
        offset += lengths.nbytes
        offsets = np.frombuffer(shm.buf, dtype=np.int64,
                                count=ref.num_flows + 1, offset=offset)
        offset += offsets.nbytes
        sizes = np.frombuffer(shm.buf, dtype=np.int64, count=ref.num_flows,
                              offset=offset)
        offset += sizes.nbytes
        volumes = np.frombuffer(shm.buf, dtype=np.int64, count=ref.num_flows,
                                offset=offset)
        offset += volumes.nbytes
        name, keys = pickle.loads(bytes(shm.buf[offset:offset
                                                + ref.blob_size]))
        compiled = CompiledTrace(name=name, keys=keys, lengths=lengths,
                                 offsets=offsets, sizes=sizes,
                                 volumes=volumes)
        entry = (shm, compiled)
        _ATTACHED[ref.shm_name] = entry
    return entry[1]


# ---------------------------------------------------------------------------
# persistent pool
# ---------------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS: Optional[int] = None


def _get_pool(max_workers: Optional[int]) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != max_workers:
        shutdown_pool()
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=max_workers)
        _POOL_WORKERS = max_workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (no-op when none is live)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        try:
            _POOL.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        _POOL = None
        _POOL_WORKERS = None


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# units: (job x replica-chunk) work items
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Unit:
    """One worker-sized slice of a job: a full replay or a replica chunk."""

    job_index: int
    scheme_factory: Callable[[], object]
    trace: Union[Trace, CompiledTrace, _SharedTraceRef]
    order: str
    rng: object
    engine: str
    replicas: int
    #: Record telemetry in the (possibly remote) process running this
    #: unit; the snapshot travels back with the results.
    telemetry: bool = False


_UnitOutcome = Tuple[List[RunResult], Optional[dict]]


def _run_unit(unit: _Unit) -> _UnitOutcome:
    trace = unit.trace
    if isinstance(trace, _SharedTraceRef):
        trace = _attach(trace)
    # A fresh session per unit: workers can't share the parent's registry,
    # so events are captured locally and merged from the snapshot.
    tel = obs.Telemetry() if unit.telemetry else None
    scheme = unit.scheme_factory()
    if unit.replicas > 1:
        results = replay_replicas(scheme, trace, replicas=unit.replicas,
                                  rng=unit.rng, telemetry=tel)
    else:
        results = [replay(scheme, trace, order=unit.order, rng=unit.rng,
                          engine=unit.engine, telemetry=tel)]
    return results, (tel.snapshot() if tel is not None else None)


def _expand(jobs: Sequence[ReplayJob], telemetry: bool = False) -> List[_Unit]:
    """Split jobs into units: replica jobs become seeded chunks.

    Chunk seeds are spawned from ``SeedSequence(job.rng)``, so the same
    job always produces the same replica streams regardless of worker
    count or scheduling — pooled and serial execution agree.
    """
    units: List[_Unit] = []
    for index, job in enumerate(jobs):
        if job.replicas == 1:
            units.append(_Unit(index, job.scheme_factory, job.trace,
                               job.order, job.rng, job.engine, 1, telemetry))
            continue
        n_chunks = -(-job.replicas // REPLICA_CHUNK)
        seeds = np.random.SeedSequence(job.rng).spawn(n_chunks)
        remaining = job.replicas
        for chunk, seed in enumerate(seeds):
            size = min(REPLICA_CHUNK, remaining)
            remaining -= size
            units.append(_Unit(index, job.scheme_factory, job.trace,
                               job.order, np.random.default_rng(seed),
                               job.engine, size, telemetry))
    return units


def replay_parallel(
    jobs: Sequence[ReplayJob],
    max_workers: Optional[int] = None,
    telemetry: Optional["obs.Telemetry"] = None,
) -> List[RunResult]:
    """Run the jobs across a process pool; results in job order.

    A job with ``replicas=R`` contributes R consecutive results (replica
    order), other jobs one each.  With ``max_workers=1`` (or a single
    work unit) everything runs in-process — no pool, no pickling — which
    is also the fallback path for environments without working process
    pools; a pool that breaks mid-run (``BrokenProcessPool``) likewise
    degrades by retrying the unfinished units serially.

    ``telemetry`` scopes event recording to a :class:`repro.obs.Telemetry`
    session (``None`` = the ambient global registry, disabled by
    default).  When recording, workers capture events locally and ship a
    snapshot back with each unit's results; the session sees the merged
    totals plus pool-lifecycle events (``parallel.*``, see
    ``docs/telemetry.md``).
    """
    if not jobs:
        raise ParameterError("at least one job is required")
    if max_workers is not None and max_workers < 1:
        raise ParameterError(f"max_workers must be >= 1, got {max_workers!r}")
    for job in jobs:
        if job.replicas < 1:
            raise ParameterError(
                f"replicas must be >= 1, got {job.replicas!r}")
        if job.replicas > 1 and job.engine not in ("auto", "vector"):
            raise ParameterError(
                f"replica jobs run on the vector path; engine must be "
                f"'auto' or 'vector', got {job.engine!r}"
            )

    session = obs.resolve(telemetry)
    units = _expand(jobs, telemetry=session.enabled)
    session.count("parallel.jobs", len(jobs))
    session.count("parallel.units", len(units))
    chunks = sum(1 for unit in units if unit.replicas > 1)
    if chunks:
        session.count("parallel.replica_chunks", chunks)
    if len(units) == 1 or max_workers == 1:
        unit_results = [_run_unit(unit) for unit in units]
    else:
        unit_results = _run_units_pooled(units, max_workers, session)

    results: List[RunResult] = []
    for unit, (out, snap) in zip(units, unit_results):
        session.merge(snap)
        results.extend(out)
    return results


def _run_units_pooled(
    units: List[_Unit],
    max_workers: Optional[int],
    session: "obs.Telemetry" = obs.NULL_TELEMETRY,
) -> List[_UnitOutcome]:
    """Submit units to the persistent pool, shared-shipping big traces.

    Units whose future dies with the pool are retried serially with the
    original (unshared) trace, so a broken pool or a torn-down segment
    never loses work.
    """
    shipped = []
    for unit in units:
        trace = unit.trace
        if (isinstance(trace, CompiledTrace)
                and trace.nbytes() >= SHARE_THRESHOLD_BYTES):
            fresh = trace not in _PUBLISHED
            ref = _publish(trace)
            if ref is not None:
                if fresh:
                    session.count("parallel.shm.published")
                    session.count("parallel.shm.published_bytes",
                                  trace.nbytes())
                unit = replace(unit, trace=ref)
        shipped.append(unit)

    try:
        reusing = _POOL is not None and _POOL_WORKERS == max_workers
        pool = _get_pool(max_workers)
        futures = [pool.submit(_run_unit, unit) for unit in shipped]
        session.count("parallel.pool.reused" if reusing
                      else "parallel.pool.created")
    except (OSError, PermissionError, BrokenProcessPool):
        # Restricted environments (no fork/spawn): degrade gracefully.
        shutdown_pool()
        session.count("parallel.serial_fallbacks")
        return [_run_unit(unit) for unit in units]

    results: List[Optional[_UnitOutcome]] = [None] * len(units)
    retry: List[int] = []
    for i, future in enumerate(futures):
        try:
            results[i] = future.result()
        except BrokenProcessPool:
            # A worker died mid-map; the whole pool is poisoned.  Drop
            # it and finish this unit (and any others that follow) in
            # process.
            shutdown_pool()
            retry.append(i)
        except (OSError, PermissionError):
            retry.append(i)
    for i in retry:
        session.count("parallel.pool.broken_retries")
        results[i] = _run_unit(units[i])
    return results
