"""Parallel replay: run independent scheme/trace replays across processes.

Comparative experiments (Figures 5-7, Table II) replay the same trace
through several schemes; the replays are independent, so they
parallelise embarrassingly.  ``replay_parallel`` fans a list of jobs out
over a process pool and returns the usual
:class:`~repro.harness.runner.RunResult` objects in job order.

Jobs are specified as (factory, trace, kwargs) with a *callable factory*
rather than a live scheme so that each worker constructs its own scheme
(schemes hold ``random.Random`` state; building in-worker keeps the
parent's objects untouched and the pickling surface tiny).

For full-scale traces, pass a :class:`~repro.traces.compiled.CompiledTrace`
(from :func:`~repro.traces.compiled.compile_trace`) as the job's trace:
it pickles as a few NumPy buffers instead of per-flow Python lists, so
fanning one big trace out to many workers stops re-serialising packet
lists, and ``engine="vector"`` jobs replay the shipped arrays directly.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import ParameterError
from repro.harness.runner import RunResult, replay
from repro.traces.compiled import CompiledTrace
from repro.traces.trace import Trace

__all__ = ["ReplayJob", "replay_parallel"]


@dataclass(frozen=True)
class ReplayJob:
    """One replay to run: a scheme factory, a trace, and replay options."""

    scheme_factory: Callable[[], object]
    trace: Union[Trace, CompiledTrace]
    order: str = "shuffled"
    rng: Optional[int] = None
    engine: str = "auto"


def _run_job(job: ReplayJob) -> RunResult:
    scheme = job.scheme_factory()
    return replay(scheme, job.trace, order=job.order, rng=job.rng,
                  engine=job.engine)


def replay_parallel(
    jobs: Sequence[ReplayJob],
    max_workers: Optional[int] = None,
) -> List[RunResult]:
    """Run the jobs across a process pool; results in job order.

    With ``max_workers=1`` (or a single job) everything runs in-process —
    no pool, no pickling — which is also the fallback path for
    environments without working ``fork``.
    """
    if not jobs:
        raise ParameterError("at least one job is required")
    if max_workers is not None and max_workers < 1:
        raise ParameterError(f"max_workers must be >= 1, got {max_workers!r}")
    if len(jobs) == 1 or max_workers == 1:
        return [_run_job(job) for job in jobs]
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(_run_job, jobs))
    except (OSError, PermissionError):
        # Restricted environments (no fork/spawn): degrade gracefully.
        return [_run_job(job) for job in jobs]
