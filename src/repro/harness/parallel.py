"""Parallel replay: run independent scheme/trace replays across processes.

Comparative experiments (Figures 5-7, Table II) replay the same trace
through several schemes; the replays are independent, so they
parallelise embarrassingly.  ``replay_parallel`` fans a list of jobs out
over a process pool and returns the usual
:class:`~repro.harness.runner.RunResult` objects in job order.

Jobs are specified as (factory, trace, kwargs) with a *callable factory*
rather than a live scheme so that each worker constructs its own scheme
(schemes hold ``random.Random`` state; building in-worker keeps the
parent's objects untouched and the pickling surface tiny).

Three mechanisms keep the fan-out cheap at full trace scale:

* **Persistent pool** — one module-level ``ProcessPoolExecutor`` is
  reused across ``replay_parallel`` calls (rebuilt only when the
  requested worker count changes), so repeated experiment sweeps pay the
  interpreter fork cost once, not per call.
* **Shared-memory traces** — a :class:`~repro.traces.compiled.CompiledTrace`
  above :data:`SHARE_THRESHOLD_BYTES` is published once into a
  ``multiprocessing.shared_memory`` segment; jobs then carry a tiny
  handle and every worker maps the same buffers instead of receiving a
  per-job pickle of the arrays.  Segments carry ``repro_<pid>_``-prefixed
  names, are unlinked automatically when the parent's compiled trace is
  garbage-collected (and eagerly when a pool breaks), and stale segments
  abandoned by dead processes are swept whenever a fresh pool starts.
* **Replica chunks** — a job with ``replicas=R`` is split into chunks of
  :data:`~repro.facade.REPLICA_CHUNK` replicas, each advanced as one
  columnar multi-replica pass
  (:func:`~repro.harness.runner.replay_replicas`), so R independent
  seeded replays of one (scheme, trace) pair spread across workers while
  each chunk still amortises one trace sweep.  Chunk streams come from
  :func:`repro.facade.replica_chunks` — the *same* schedule the serial
  path uses — so for any :func:`repro.seed_streams` rng convention,
  pooled and serial R-replica results are bit-identical.

Degradation is always graceful: environments without working process
pools (no ``fork``/``spawn``, sandboxed ``/dev/shm``) and pools that die
mid-run (``BrokenProcessPool``) fall back to in-process execution of
whatever work is unfinished.  Every recovery is recorded as a
``recovery.*`` telemetry event, and every failure path can be exercised
deterministically through :mod:`repro.faults` — pass ``faults=`` (or set
``REPRO_FAULTS``) to inject worker kills, shm failures and broken pools
at the seams and assert the invariants the recovery preserves.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import re
import secrets
import weakref
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro import faults as _faults
from repro import obs
from repro.errors import ParameterError
from repro.facade import REPLICA_CHUNK, replay, replica_chunks
from repro.faults import FaultPlan
from repro.harness.runner import RunResult, replay_replicas
from repro.traces.compiled import CompiledTrace
from repro.traces.trace import Trace

__all__ = ["ReplayJob", "replay_parallel", "run_tasks", "shutdown_pool",
           "SHARE_THRESHOLD_BYTES", "REPLICA_CHUNK"]

#: CompiledTrace array footprint above which the trace is shipped through
#: a shared-memory segment instead of pickled per job.  Below it the
#: pickle is cheaper than a segment create + attach round-trip.
SHARE_THRESHOLD_BYTES = 1 << 18


@dataclass(frozen=True)
class ReplayJob:
    """One replay to run: a scheme factory, a trace, and replay options.

    ``replicas > 1`` requests R independent seeded replays of the same
    (scheme, trace) pair via the columnar replica axis; the scheme must
    expose a kernel (``engine`` ``"auto"``/``"vector"``) and the job
    yields R results instead of one.  ``rng`` then seeds the replica
    streams (``order`` is ignored — the vector path is order-free).

    ``scheme_factory`` must survive pickling to reach a worker; prefer
    :func:`repro.scheme_factory` (a frozen registry name + params spec)
    over ad-hoc closures, which only work for module-level functions.
    """

    scheme_factory: Callable[[], object]
    trace: Union[Trace, CompiledTrace]
    order: str = "shuffled"
    rng: Optional[int] = None
    engine: str = "auto"
    replicas: int = 1


# ---------------------------------------------------------------------------
# shared-memory trace shipping
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _SharedTraceRef:
    """Pickle-sized handle to a published CompiledTrace segment."""

    shm_name: str
    num_flows: int
    num_packets: int
    blob_size: int


class _SharedTraceHandle:
    """Parent-side record keeping a published segment alive."""

    __slots__ = ("shm", "ref")

    def __init__(self, shm: shared_memory.SharedMemory,
                 ref: _SharedTraceRef) -> None:
        self.shm = shm
        self.ref = ref


#: Parent-side publications, one per live CompiledTrace object.
_PUBLISHED: "weakref.WeakKeyDictionary[CompiledTrace, _SharedTraceHandle]" = \
    weakref.WeakKeyDictionary()

#: Names already handed to :func:`_unlink_segment` — makes unlinking
#: idempotent no matter how many paths race to clean the same segment
#: (``weakref.finalize``, broken-pool recovery, interpreter teardown).
_UNLINKED: Set[str] = set()

_SEGMENT_COUNTER = itertools.count()

#: Segment names are ``repro_<pid>_<n>_<token>`` so the startup sweep
#: can tell which segments belong to processes that are no longer alive.
_SEGMENT_NAME_RE = re.compile(r"^repro_(\d+)_\d+_[0-9a-f]+$")


def _segment_name() -> str:
    return (f"repro_{os.getpid()}_{next(_SEGMENT_COUNTER)}_"
            f"{secrets.token_hex(4)}")


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    if shm.name in _UNLINKED:
        return
    _UNLINKED.add(shm.name)
    try:
        _faults.fire("shm.unlink")
        shm.close()
        shm.unlink()
    except Exception:
        pass  # already gone (interpreter teardown, double finalize)


def _unlink_published(session: "obs.Telemetry") -> None:
    """Eagerly unlink every published segment (broken-pool recovery).

    A broken pool's workers died with their attachments; dropping the
    parent-side publications here guarantees no segment outlives the
    failure, instead of waiting for the compiled traces to be
    garbage-collected.  Traces republish on the next pooled call.
    """
    count = 0
    for compiled in list(_PUBLISHED):
        handle = _PUBLISHED.pop(compiled, None)
        if handle is not None:
            _unlink_segment(handle.shm)
            count += 1
    if count:
        session.count("recovery.shm.unlinked", count)


def _sweep_stale_segments(session: "obs.Telemetry") -> None:
    """Remove ``repro``-prefixed segments abandoned by dead processes.

    A worker (or a whole parent) killed before its finalizers run leaves
    its segments behind in ``/dev/shm``; sweeping at pool startup keeps
    the leak bounded to one crashed run.  Only segments whose embedded
    pid is no longer alive are touched.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return
    count = 0
    for name in names:
        match = _SEGMENT_NAME_RE.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # owner still alive
        except ProcessLookupError:
            pass
        except OSError:
            continue  # exists but not ours to probe
        try:
            os.unlink(os.path.join(shm_dir, name))
            count += 1
        except OSError:
            pass
    if count:
        session.count("recovery.shm.swept", count)


def _publish(compiled: CompiledTrace) -> Optional[_SharedTraceRef]:
    """Publish the trace's arrays into shared memory (once per object).

    Returns ``None`` when the platform refuses shared memory — callers
    then fall back to pickling the trace per job.
    """
    handle = _PUBLISHED.get(compiled)
    if handle is not None:
        return handle.ref
    blob = pickle.dumps((compiled.name, compiled.keys),
                        protocol=pickle.HIGHEST_PROTOCOL)
    arrays = [np.ascontiguousarray(a) for a in
              (compiled.lengths, compiled.offsets, compiled.sizes,
               compiled.volumes)]
    total = sum(a.nbytes for a in arrays) + len(blob)
    shm = None
    try:
        _faults.fire("shm.create")
        for _ in range(3):  # name collisions are ~impossible; be safe
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, total), name=_segment_name())
                break
            except FileExistsError:
                continue
        if shm is None:
            return None
    except (OSError, PermissionError):
        return None
    offset = 0
    for a in arrays:
        np.frombuffer(shm.buf, dtype=a.dtype, count=a.size,
                      offset=offset)[:] = a
        offset += a.nbytes
    shm.buf[offset:offset + len(blob)] = blob
    ref = _SharedTraceRef(shm_name=shm.name, num_flows=compiled.num_flows,
                          num_packets=compiled.num_packets,
                          blob_size=len(blob))
    _PUBLISHED[compiled] = _SharedTraceHandle(shm, ref)
    # Unlink when the parent's compiled trace dies (also runs at exit).
    weakref.finalize(compiled, _unlink_segment, shm)
    return ref


#: Worker-side attachments: segment name -> (segment, rebuilt trace).
#: Lives for the worker process lifetime, so each worker maps a given
#: trace exactly once no matter how many units replay it.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, CompiledTrace]] = {}


def _attach(ref: _SharedTraceRef) -> CompiledTrace:
    entry = _ATTACHED.get(ref.shm_name)
    if entry is None:
        _faults.fire("shm.attach")
        # Attaching re-registers the name with the resource tracker, but
        # the tracker is shared with the parent (inherited fd) and its
        # cache is a set, so the extra register is a no-op and the
        # parent's unlink performs the single unregister.  Workers must
        # NOT unregister themselves — that would race the parent into a
        # double-unregister.
        shm = shared_memory.SharedMemory(name=ref.shm_name)
        offset = 0
        lengths = np.frombuffer(shm.buf, dtype=np.float64,
                                count=ref.num_packets, offset=offset)
        offset += lengths.nbytes
        offsets = np.frombuffer(shm.buf, dtype=np.int64,
                                count=ref.num_flows + 1, offset=offset)
        offset += offsets.nbytes
        sizes = np.frombuffer(shm.buf, dtype=np.int64, count=ref.num_flows,
                              offset=offset)
        offset += sizes.nbytes
        volumes = np.frombuffer(shm.buf, dtype=np.int64, count=ref.num_flows,
                                offset=offset)
        offset += volumes.nbytes
        name, keys = pickle.loads(bytes(shm.buf[offset:offset
                                                + ref.blob_size]))
        compiled = CompiledTrace(name=name, keys=keys, lengths=lengths,
                                 offsets=offsets, sizes=sizes,
                                 volumes=volumes)
        entry = (shm, compiled)
        _ATTACHED[ref.shm_name] = entry
    return entry[1]


# ---------------------------------------------------------------------------
# persistent pool
# ---------------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS: Optional[int] = None


def _get_pool(max_workers: Optional[int],
              session: "obs.Telemetry" = obs.NULL_TELEMETRY,
              ) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != max_workers:
        shutdown_pool()
    if _POOL is None:
        _faults.fire("pool.create")
        _sweep_stale_segments(session)
        _POOL = ProcessPoolExecutor(max_workers=max_workers)
        _POOL_WORKERS = max_workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (no-op when none is live)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        try:
            _POOL.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        _POOL = None
        _POOL_WORKERS = None


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# units: (job x replica-chunk) work items
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Unit:
    """One worker-sized slice of a job: a full replay or a replica chunk."""

    job_index: int
    scheme_factory: Callable[[], object]
    trace: Union[Trace, CompiledTrace, _SharedTraceRef]
    order: str
    rng: object
    engine: str
    replicas: int
    #: Record telemetry in the (possibly remote) process running this
    #: unit; the snapshot travels back with the results.
    telemetry: bool = False
    #: This unit's position in the expanded unit list (fault targeting).
    index: int = 0
    #: Fault plan shipped to the worker; armed only inside worker
    #: processes, so serial (in-parent) retries of the same unit run
    #: clean — exactly the recovery the injected fault is probing.
    faults: Optional[FaultPlan] = None


_UnitOutcome = Tuple[List[RunResult], Optional[dict]]


def _run_unit(unit: _Unit) -> _UnitOutcome:
    # A fresh session per unit: workers can't share the parent's registry,
    # so events are captured locally and merged from the snapshot.
    tel = obs.Telemetry() if unit.telemetry else None
    in_worker = multiprocessing.parent_process() is not None
    if in_worker:
        # (Re-)arm this unit's plan in the worker; a unit without one
        # disarms whatever a previous unit left behind in this process.
        if unit.faults:
            _faults.arm(unit.faults, telemetry=tel)
            _faults.fire("worker.run", unit=unit.index)
        else:
            _faults.disarm()
    trace = unit.trace
    if isinstance(trace, _SharedTraceRef):
        trace = _attach(trace)
    scheme = unit.scheme_factory()
    if unit.replicas > 1:
        # rng is a pre-derived chunk stream (see _expand): run it as one
        # pass rather than re-chunking.
        results = replay_replicas(scheme, trace, replicas=unit.replicas,
                                  rng=unit.rng, telemetry=tel,
                                  chunked=False)
    else:
        results = [replay(scheme, trace, order=unit.order, rng=unit.rng,
                          engine=unit.engine, telemetry=tel)]
    return results, (tel.snapshot() if tel is not None else None)


def _expand(jobs: Sequence[ReplayJob], telemetry: bool = False,
            faults: Optional[FaultPlan] = None) -> List[_Unit]:
    """Split jobs into units: replica jobs become seeded chunks.

    Chunk streams come from :func:`repro.facade.replica_chunks` — the
    same schedule serial :func:`~repro.harness.runner.replay_replicas`
    consumes — so the same job produces the same replica results
    regardless of worker count, scheduling, or rng convention
    (``int``/``random.Random``/``Generator``/``SeedSequence``).  An
    unseeded replica job draws a fresh entropy root, keeping its chunks
    independent but unreproducible, as documented.
    """
    units: List[_Unit] = []
    for index, job in enumerate(jobs):
        if job.replicas == 1:
            units.append(_Unit(index, job.scheme_factory, job.trace,
                               job.order, job.rng, job.engine, 1, telemetry,
                               len(units), faults))
            continue
        rng = job.rng if job.rng is not None else np.random.SeedSequence()
        for size, chunk_rng in replica_chunks(job.replicas, rng):
            units.append(_Unit(index, job.scheme_factory, job.trace,
                               job.order, chunk_rng, job.engine, size,
                               telemetry, len(units), faults))
    return units


def replay_parallel(
    jobs: Sequence[ReplayJob],
    max_workers: Optional[int] = None,
    telemetry: Optional["obs.Telemetry"] = None,
    faults: Union[None, str, FaultPlan] = None,
) -> List[RunResult]:
    """Run the jobs across a process pool; results in job order.

    A job with ``replicas=R`` contributes R consecutive results (replica
    order), other jobs one each.  With ``max_workers=1`` (or a single
    work unit) everything runs in-process — no pool, no pickling — which
    is also the fallback path for environments without working process
    pools; a pool that breaks mid-run (``BrokenProcessPool``) likewise
    degrades by retrying the unfinished units serially.

    ``telemetry`` scopes event recording to a :class:`repro.obs.Telemetry`
    session (``None`` = the ambient global registry, disabled by
    default).  When recording, workers capture events locally and ship a
    snapshot back with each unit's results; the session sees each unit's
    events merged exactly once — a unit retried serially contributes
    only its retry's snapshot — plus pool-lifecycle events
    (``parallel.*`` / ``recovery.*``, see ``docs/telemetry.md``).

    ``faults`` arms a :class:`repro.faults.FaultPlan` (or plan string)
    for the duration of this call; ``None`` defers to the
    ``REPRO_FAULTS`` environment variable.  See :mod:`repro.faults`.
    """
    if not jobs:
        raise ParameterError("at least one job is required")
    if max_workers is not None and max_workers < 1:
        raise ParameterError(f"max_workers must be >= 1, got {max_workers!r}")
    for job in jobs:
        if job.replicas < 1:
            raise ParameterError(
                f"replicas must be >= 1, got {job.replicas!r}")
        if job.replicas > 1 and job.engine not in ("auto", "vector"):
            raise ParameterError(
                f"replica jobs run on the vector path; engine must be "
                f"'auto' or 'vector', got {job.engine!r}"
            )

    plan = _faults.resolve_plan(faults)
    session = obs.resolve(telemetry)
    units = _expand(jobs, telemetry=session.enabled, faults=plan)
    session.count("parallel.jobs", len(jobs))
    session.count("parallel.units", len(units))
    chunks = sum(1 for unit in units if unit.replicas > 1)
    if chunks:
        session.count("parallel.replica_chunks", chunks)
    if plan is not None:
        _faults.arm(plan, telemetry=session)
    try:
        if len(units) == 1 or max_workers == 1:
            unit_results = [_run_unit(unit) for unit in units]
        else:
            unit_results = _run_units_pooled(units, max_workers, session)
    finally:
        if plan is not None:
            _faults.disarm()

    results: List[RunResult] = []
    for unit, (out, snap) in zip(units, unit_results):
        session.merge(snap)
        results.extend(out)
    return results


def _run_units_pooled(
    units: List[_Unit],
    max_workers: Optional[int],
    session: "obs.Telemetry" = obs.NULL_TELEMETRY,
) -> List[_UnitOutcome]:
    """Submit units to the persistent pool, shared-shipping big traces.

    Units whose future dies with the pool are retried serially with the
    original (unshared) trace, so a broken pool or a torn-down segment
    never loses work.  Outcomes are recorded only once per unit: a
    collected outcome that faults before being stored is discarded, and
    the serial retry's outcome is the one that reaches the caller (and
    therefore the telemetry merge).
    """
    shipped = []
    for unit in units:
        trace = unit.trace
        if (isinstance(trace, CompiledTrace)
                and trace.nbytes() >= SHARE_THRESHOLD_BYTES):
            fresh = trace not in _PUBLISHED
            ref = _publish(trace)
            if ref is not None:
                if fresh:
                    session.count("parallel.shm.published")
                    session.count("parallel.shm.published_bytes",
                                  trace.nbytes())
                unit = replace(unit, trace=ref)
            else:
                session.count("recovery.pickle_fallback")
        shipped.append(unit)

    try:
        reusing = _POOL is not None and _POOL_WORKERS == max_workers
        pool = _get_pool(max_workers, session)
        futures = []
        for unit in shipped:
            _faults.fire("pool.submit", unit=unit.index)
            futures.append(pool.submit(_run_unit, unit))
        session.count("parallel.pool.reused" if reusing
                      else "parallel.pool.created")
    except (OSError, PermissionError, BrokenProcessPool):
        # Restricted environments (no fork/spawn): degrade gracefully.
        shutdown_pool()
        _unlink_published(session)
        session.count("parallel.serial_fallbacks")
        session.count("recovery.serial_fallback")
        return [_run_unit(unit) for unit in units]

    results: List[Optional[_UnitOutcome]] = [None] * len(units)
    retry: List[int] = []
    broken = False
    for i, future in enumerate(futures):
        try:
            outcome = future.result()
            # The "collected but lost" seam: a fault here discards the
            # outcome (worker snapshot included), and the serial retry
            # below produces the only outcome that gets merged.
            _faults.fire("result.collect", unit=i)
            results[i] = outcome
        except BrokenProcessPool:
            # A worker died mid-map; the whole pool is poisoned.  Drop
            # it and finish this unit (and any others that follow) in
            # process.
            broken = True
            shutdown_pool()
            retry.append(i)
        except (CancelledError, OSError, PermissionError):
            # Cancelled: a mid-collect shutdown dropped this future
            # before it ran; it lost no work the retry can't redo.
            retry.append(i)
    if broken:
        # Dead workers can't unlink their attachments; drop the parent's
        # publications so nothing survives in /dev/shm.  Traces
        # republish on the next pooled call.
        _unlink_published(session)
        session.count("recovery.pool_rebuilds")
    for i in retry:
        session.count("parallel.pool.broken_retries")
        session.count("recovery.serial_retry")
        results[i] = _run_unit(units[i])
    return results


def run_tasks(
    fn: Callable[[object], object],
    tasks: Sequence[object],
    max_workers: Optional[int] = None,
    session: "obs.Telemetry" = obs.NULL_TELEMETRY,
) -> List[object]:
    """Run picklable tasks through the persistent pool, results in order.

    The generic sibling of :func:`replay_parallel` for callers with
    their own work shape — the stream subsystem's shard-chunk replays
    ride on this.  ``fn`` must be a module-level function and each task
    picklable (expose an integer ``index`` attribute for fault
    targeting at the ``pool.submit`` / ``result.collect`` seams).  The
    degradation ladder matches the replay driver's: ``max_workers=1``
    (or a single task) runs in-process; a pool that cannot start falls
    back to serial execution; a pool that breaks mid-run retries the
    unfinished tasks serially — every recovery recorded as the usual
    ``recovery.*`` events.  Unlike :func:`replay_parallel`, this runner
    does not arm fault plans itself (callers own arming) and does not
    ship traces through shared memory.
    """
    if max_workers is not None and max_workers < 1:
        raise ParameterError(f"max_workers must be >= 1, got {max_workers!r}")
    tasks = list(tasks)
    if not tasks:
        return []
    if len(tasks) == 1 or max_workers == 1:
        return [fn(task) for task in tasks]
    try:
        reusing = _POOL is not None and _POOL_WORKERS == max_workers
        pool = _get_pool(max_workers, session)
        futures = []
        for task in tasks:
            _faults.fire("pool.submit", unit=getattr(task, "index", 0))
            futures.append(pool.submit(fn, task))
        session.count("parallel.pool.reused" if reusing
                      else "parallel.pool.created")
    except (OSError, PermissionError, BrokenProcessPool):
        shutdown_pool()
        session.count("parallel.serial_fallbacks")
        session.count("recovery.serial_fallback")
        return [fn(task) for task in tasks]

    results: List[object] = [None] * len(tasks)
    retry: List[int] = []
    broken = False
    for i, future in enumerate(futures):
        try:
            outcome = future.result()
            _faults.fire("result.collect", unit=i)
            results[i] = outcome
        except BrokenProcessPool:
            broken = True
            shutdown_pool()
            retry.append(i)
        except (CancelledError, OSError, PermissionError):
            retry.append(i)
    if broken:
        _unlink_published(session)
        session.count("recovery.pool_rebuilds")
    for i in retry:
        session.count("parallel.pool.broken_retries")
        session.count("recovery.serial_retry")
        results[i] = fn(tasks[i])
    return results
