"""Experiment harness: replay driver, per-figure experiments, rendering."""

from repro.facade import replay
from repro.harness.experiments import (
    SizeComparisonRow,
    bound_gap,
    counter_bits_vs_volume,
    error_cdf_comparison,
    flow_size_per_flow_error,
    make_disco,
    make_sac,
    table2,
    table3,
    table4,
    volume_error_vs_counter_size,
)
from repro.harness.formatting import format_number, render_series, render_table
from repro.harness.montecarlo import (
    BiasVarianceReport,
    TraceReplicaReport,
    convergence_table,
    measure_estimator,
    measure_trace_estimator,
)
from repro.harness.ci import collect_metrics, compare, save_baseline
from repro.harness.parallel import ReplayJob, replay_parallel
from repro.harness.plotting import ascii_chart
from repro.harness.report import ReportConfig, generate_report, write_report
from repro.harness.runner import (
    ENGINES,
    RunResult,
    replay_replicas,
    replay_stream,
    resolve_engine,
)
from repro.harness.sweep import Sweep, SweepPoint

__all__ = [
    "RunResult",
    "replay",
    "replay_replicas",
    "SizeComparisonRow",
    "volume_error_vs_counter_size",
    "error_cdf_comparison",
    "counter_bits_vs_volume",
    "flow_size_per_flow_error",
    "table2",
    "table3",
    "table4",
    "bound_gap",
    "make_disco",
    "make_sac",
    "render_table",
    "render_series",
    "format_number",
    "BiasVarianceReport",
    "TraceReplicaReport",
    "measure_estimator",
    "measure_trace_estimator",
    "convergence_table",
    "ReportConfig",
    "generate_report",
    "write_report",
    "Sweep",
    "SweepPoint",
    "ascii_chart",
    "replay_stream",
    "ReplayJob",
    "replay_parallel",
    "collect_metrics",
    "save_baseline",
    "compare",
    "ENGINES",
    "resolve_engine",
]
