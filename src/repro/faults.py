"""Deterministic fault injection for the parallel replay stack.

The parallel driver (:mod:`repro.harness.parallel`) recovers from a
small set of real-world failures — dead workers, broken pools, refused
shared memory — and each recovery path must preserve the replay
invariants: results bit-identical to serial execution, telemetry merged
exactly once, no leaked ``/dev/shm`` segments.  Those paths are nearly
impossible to hit on demand, so this module provides *seams*: named
call-sites inside the driver that an armed :class:`FaultPlan` can turn
into deterministic failures.

Sites
-----
``pool.create``
    Constructing the persistent ``ProcessPoolExecutor``.
``pool.submit``
    Submitting one unit to the pool (fired with the unit index).
``result.collect``
    Recording one unit's collected outcome (fired with the unit index,
    *after* the worker returned but *before* the outcome is stored — the
    "collected but lost" hazard that exercises exactly-once telemetry).
``shm.create``
    Creating a shared-memory segment for a published trace.
``shm.unlink``
    Unlinking a published segment.
``shm.attach``
    A worker mapping a published segment (worker process only).
``worker.run``
    A worker starting a unit (worker process only; the one site where
    ``action="kill"`` is allowed).
``shard.run``
    A stream session dispatching one shard's chunk replay (fired with
    the shard index, parent side — see :mod:`repro.streaming`).
``checkpoint.write``
    Between serialising a stream checkpoint and atomically publishing
    it (``os.replace``); an injected failure here leaves the previous
    checkpoint intact, which is exactly the crash the resume tests
    rehearse.
``serve.ingest``
    The serve daemon about to ingest one feed batch (fired with the
    batch index) — see :mod:`repro.serve`.
``serve.checkpoint``
    The serve daemon about to write a scheduled checkpoint; an injected
    failure here crashes the daemon *between* checkpoints, the scenario
    the ``serve --resume`` bit-identity tests rehearse.

Arming
------
Pass ``faults=`` to :func:`repro.harness.parallel.replay_parallel` or
``repro.stream(..., faults=)`` — a
:class:`FaultPlan`, or a string in the plan grammar::

    site[:action][:key=value]...[;site...]

    "worker.run:kill:unit=1"              kill the worker running unit 1
    "shm.attach:raise:exception=OSError"  fail every worker attach
    "result.collect:raise:exception=BrokenProcessPool:after=1:times=1"

or set the ``REPRO_FAULTS`` environment variable to a plan string to arm
every ``replay_parallel`` call (CI chaos mode).  Each injected fault is
recorded as a ``faults.injected.<site>`` telemetry event in the session
that observed it; recovery actions appear as ``recovery.*`` events (see
``docs/telemetry.md``).

Determinism
-----------
Parent-side specs count passages in the caller's process for the
duration of one armed run.  Worker-side specs (``worker.run``,
``shm.attach``) travel with each unit and are armed freshly inside the
worker process per unit, so their ``times``/``after`` counters are
*per unit* — target a specific unit with ``unit=`` for schedules that
must fire exactly once per run.  Armed parent state inherited by a
forked worker never fires there: the injector is pid-guarded.

When nothing is armed, :func:`fire` is a module-global load and a
``None`` check — the perf gate asserts the disarmed seams stay free.
"""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro import obs
from repro.errors import ParameterError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "SITES",
    "WORKER_SITES",
    "arm",
    "disarm",
    "active",
    "fire",
    "resolve_plan",
]

#: Every seam the parallel driver exposes.
SITES = frozenset({
    "pool.create",
    "pool.submit",
    "result.collect",
    "shm.create",
    "shm.unlink",
    "shm.attach",
    "worker.run",
    "shard.run",
    "checkpoint.write",
    "serve.ingest",
    "serve.checkpoint",
})

#: Seams that fire inside worker processes (shipped with each unit).
WORKER_SITES = frozenset({"worker.run", "shm.attach"})

#: Exceptions a ``raise`` spec may name — the set the driver's recovery
#: paths are written against.
_EXCEPTIONS = {
    "OSError": OSError,
    "PermissionError": PermissionError,
    "FileNotFoundError": FileNotFoundError,
    "RuntimeError": RuntimeError,
    "BrokenProcessPool": BrokenProcessPool,
}

_ACTIONS = ("raise", "kill")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: where, what, and when.

    ``action="raise"`` raises ``exception`` at the site;
    ``action="kill"`` hard-exits the process (``os._exit``) and is only
    valid at ``worker.run``.  The spec skips its first ``after``
    matching passages, then fires on the next ``times`` of them.
    ``unit`` restricts the spec to the unit with that index (sites fired
    without a unit index never match a unit-targeted spec).
    """

    site: str
    action: str = "raise"
    exception: str = "OSError"
    times: int = 1
    after: int = 0
    unit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ParameterError(
                f"unknown fault site {self.site!r}; choose from "
                f"{sorted(SITES)}")
        if self.action not in _ACTIONS:
            raise ParameterError(
                f"unknown fault action {self.action!r}; choose from "
                f"{list(_ACTIONS)}")
        if self.action == "kill" and self.site != "worker.run":
            raise ParameterError(
                f"action 'kill' is only valid at site 'worker.run', "
                f"got {self.site!r}")
        if self.exception not in _EXCEPTIONS:
            raise ParameterError(
                f"unknown fault exception {self.exception!r}; choose "
                f"from {sorted(_EXCEPTIONS)}")
        if self.times < 1:
            raise ParameterError(f"times must be >= 1, got {self.times!r}")
        if self.after < 0:
            raise ParameterError(f"after must be >= 0, got {self.after!r}")
        if self.unit is not None and self.unit < 0:
            raise ParameterError(f"unit must be >= 0, got {self.unit!r}")

    def trigger(self) -> None:
        """Perform the fault (never returns normally)."""
        if self.action == "kill":
            os._exit(1)
        raise _EXCEPTIONS[self.exception](
            f"injected fault at {self.site}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` to arm together."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``site[:action][:key=value]...`` grammar.

        Specs are separated by ``;``.  Keys: ``exception``, ``times``,
        ``after``, ``unit``.  Example::

            "worker.run:kill:unit=0;shm.attach:raise:times=2"
        """
        specs: List[FaultSpec] = []
        for token in text.split(";"):
            token = token.strip()
            if not token:
                continue
            parts = token.split(":")
            kwargs = {"site": parts[0].strip()}
            for part in parts[1:]:
                part = part.strip()
                if part in _ACTIONS:
                    kwargs["action"] = part
                    continue
                if "=" not in part:
                    raise ParameterError(
                        f"bad fault token {part!r} in {token!r}; expected "
                        f"an action ({'/'.join(_ACTIONS)}) or key=value")
                key, _, value = part.partition("=")
                key = key.strip()
                value = value.strip()
                if key == "exception":
                    kwargs["exception"] = value
                elif key in ("times", "after", "unit"):
                    try:
                        kwargs[key] = int(value)
                    except ValueError:
                        raise ParameterError(
                            f"fault key {key!r} needs an integer, got "
                            f"{value!r}") from None
                else:
                    raise ParameterError(
                        f"unknown fault key {key!r}; choose from "
                        f"['after', 'exception', 'times', 'unit']")
            specs.append(FaultSpec(**kwargs))
        if not specs:
            raise ParameterError(
                f"fault plan {text!r} contains no specs")
        return cls(tuple(specs))

    def worker_specs(self) -> "FaultPlan":
        """The sub-plan of worker-side specs (may be empty)."""
        return FaultPlan(tuple(s for s in self.specs
                               if s.site in WORKER_SITES))

    def __bool__(self) -> bool:
        return bool(self.specs)


class FaultInjector:
    """Armed plan state: per-spec passage counters plus a pid guard.

    ``fire(site, unit)`` walks the plan's specs for the site, counts the
    matching passage, and triggers the first spec whose ``after``/
    ``times`` window covers it.  Each injection is counted as a
    ``faults.injected.<site>`` event on the injector's telemetry
    session.  An injector only ever fires in the process that armed it
    — state inherited across ``fork`` is inert.
    """

    __slots__ = ("plan", "telemetry", "_pid", "_seen", "_fired")

    def __init__(self, plan: FaultPlan,
                 telemetry: Optional["obs.Telemetry"] = None) -> None:
        self.plan = plan
        self.telemetry = telemetry if telemetry is not None \
            else obs.NULL_TELEMETRY
        self._pid = os.getpid()
        self._seen = [0] * len(plan.specs)
        self._fired = [0] * len(plan.specs)

    @property
    def injected(self) -> int:
        """Total faults triggered by this injector so far."""
        return sum(self._fired)

    def fire(self, site: str, unit: Optional[int] = None) -> None:
        if os.getpid() != self._pid:
            return
        for i, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if spec.unit is not None and spec.unit != unit:
                continue
            self._seen[i] += 1
            if self._seen[i] <= spec.after:
                continue
            if self._fired[i] >= spec.times:
                continue
            self._fired[i] += 1
            self.telemetry.count(f"faults.injected.{site}")
            spec.trigger()


#: The armed injector, if any.  Module-global so the driver's seams cost
#: one load + ``None`` check when disarmed.
_ACTIVE: Optional[FaultInjector] = None


def arm(plan: FaultPlan,
        telemetry: Optional["obs.Telemetry"] = None) -> FaultInjector:
    """Arm ``plan`` in this process; returns the live injector."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan, telemetry)
    return _ACTIVE


def disarm() -> None:
    """Disarm whatever plan is active (no-op when none is)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    """The armed injector, or ``None``."""
    return _ACTIVE


def fire(site: str, unit: Optional[int] = None) -> None:
    """The seam the driver calls; free when nothing is armed."""
    injector = _ACTIVE
    if injector is None:
        return
    injector.fire(site, unit)


def resolve_plan(
    faults: Union[None, str, FaultPlan],
) -> Optional[FaultPlan]:
    """Normalise a ``faults=`` argument to a plan (or ``None``).

    ``None`` consults the ``REPRO_FAULTS`` environment variable (a plan
    string; empty/unset means disarmed), a string is parsed, and a
    :class:`FaultPlan` passes through.
    """
    if faults is None:
        text = os.environ.get("REPRO_FAULTS", "").strip()
        return FaultPlan.parse(text) if text else None
    if isinstance(faults, str):
        return FaultPlan.parse(faults)
    if isinstance(faults, FaultPlan):
        return faults
    raise ParameterError(
        f"unsupported faults type {type(faults).__name__}; pass None, a "
        f"plan string or a FaultPlan")
