"""Command-line interface: generate traces, replay schemes, rerun experiments.

Examples
--------
Replay DISCO over a registry workload — ``--trace`` takes either a
registry spec ``name[:key=value,...]`` or a trace file path::

    python -m repro replay --trace nlanr:num_flows=300 --scheme disco --bits 10
    python -m repro gen-trace --kind nlanr --flows 300 --out /tmp/oc192.trace
    python -m repro replay --trace /tmp/oc192.trace --scheme disco --bits 10

Sweep every scheme over the toolkit's stress scenarios and regenerate
``docs/scenarios.md``::

    python -m repro scenarios --quick

Run the long-running measurement daemon and query it live
(``docs/serve.md``)::

    python -m repro serve --feed trace --trace /tmp/oc192.trace \
        --epoch-packets 100000 --checkpoint /tmp/oc192.ckpt
    curl http://127.0.0.1:<port>/topk?n=10

Re-print a figure or table from the paper::

    python -m repro figure 5
    python -m repro table 5
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.harness.experiments import (
    bound_gap,
    counter_bits_vs_volume,
    error_cdf_comparison,
    table2,
    table3,
    table4,
    volume_error_vs_counter_size,
)
from repro.harness.formatting import render_series, render_table
from repro.core.stores import store_names
from repro.errors import ParameterError
from repro.facade import replay, stream
from repro.schemes import make_scheme, scheme_factory, scheme_names
from repro.traces.registry import make_trace, trace_names
from repro.traces.trace_io import read_trace, write_trace

__all__ = ["main", "build_parser", "resolve_trace"]

#: ``gen-trace --kind`` choices: every registry trace that can be
#: written to a file (``big`` is chunk-only / streaming-only).
TRACE_KINDS = tuple(n for n in trace_names() if n != "big")
#: Valid ``--scheme`` choices — the public registry, not a local list.
SCHEMES = scheme_names()


def _make_trace(kind: str, flows: int, seed: int):
    """Build a registry trace from gen-trace's ``--kind``/``--flows``.

    Every kind routes through :func:`repro.traces.make_trace`; the
    single ``--flows`` knob maps onto the kind's natural count.
    """
    params = {"seed": seed}
    if kind == "churn":
        params["flows_per_epoch"] = flows
    elif kind == "adversarial":
        params["num_mice"] = flows
    else:
        params["num_flows"] = flows
    return make_trace(kind, **params)


def _coerce_param(text: str):
    """Parse a ``--trace`` spec value: int, then float, else string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def resolve_trace(spec: str):
    """Resolve a ``--trace`` argument: registry spec or trace file path.

    ``name[:key=value,...]`` builds through the public registry
    (:func:`repro.traces.make_trace`); anything that looks like a file
    (a path separator, a trace suffix, or an existing file) loads via
    the trace readers.  Bad parameters raise
    :class:`~repro.errors.ParameterError` (exit code 2).
    """
    if (os.sep in spec or spec.endswith((".trace", ".pcap", ".gz"))
            or os.path.exists(spec)):
        return _read_any_trace(spec)
    name, _, rest = spec.partition(":")
    params = {}
    if rest:
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise ParameterError(
                    f"bad --trace parameter {pair!r} in {spec!r}; "
                    f"expected name:key=value[,key=value...]")
            params[key.strip()] = _coerce_param(value.strip())
    return make_trace(name, **params)


# -- subcommand handlers -------------------------------------------------------


def _read_any_trace(path: str):
    """Dispatch trace loading by file suffix (.pcap vs native format)."""
    if str(path).endswith(".pcap"):
        from repro.traces.pcap import read_pcap

        return read_pcap(path)
    return read_trace(path)


def cmd_gen_trace(args: argparse.Namespace) -> int:
    trace = _make_trace(args.kind, args.flows, args.seed)
    if str(args.out).endswith(".pcap"):
        from repro.traces.pcap import write_pcap

        count = write_pcap(trace, args.out, order=args.order, seed=args.seed)
    else:
        count = write_trace(trace, args.out, order=args.order, seed=args.seed)
    stats = trace.stats()
    print(f"wrote {count} packets, {stats.num_flows} flows to {args.out}")
    print(f"  mean flow: {stats.mean_flow_packets:.1f} pkts / "
          f"{stats.mean_flow_bytes / 1e3:.1f} KB")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs import Telemetry

    if args.trace is None:
        raise ParameterError("replay needs --trace (registry spec "
                             "`name[:key=value,...]` or a trace file)")
    trace = resolve_trace(args.trace)
    truths = trace.true_totals(args.mode)
    scheme = make_scheme(args.scheme, bits=args.bits, mode=args.mode,
                         max_length=max(truths.values()), seed=args.seed)
    tel = Telemetry() if args.telemetry else None
    result = replay(scheme, trace, rng=args.seed + 1, engine=args.engine,
                    store=args.store, telemetry=tel)
    print(f"scheme={result.scheme_name} trace={result.trace_name} "
          f"mode={result.mode} engine={result.engine}")
    print(render_table(
        ["packets", "flows", "avg R", "max R", "R_o(0.95)", "counter bits",
         "seconds"],
        [[result.packets, len(result.truths), result.summary.average,
          result.summary.maximum, result.summary.optimistic_95,
          result.max_counter_bits, result.elapsed_seconds]],
    ))
    if tel is not None:
        snap = tel.snapshot()
        print("telemetry:")
        for name in sorted(snap["counters"]):
            print(f"  {name} = {snap['counters'][name]}")
        for name in sorted(snap["timers"]):
            entry = snap["timers"][name]
            print(f"  {name} = {entry['seconds']:.6f}s / {entry['count']}")
    return 0


def _stream_engine(engine: str) -> str:
    """Map the shared ``--engine`` flag onto the streaming backends.

    The common parser accepts every replay engine; streams only run
    columnar chunks, so ``auto`` resolves to ``vector`` here and the
    scalar engines are rejected downstream by
    :func:`repro.facade._validate` (exit code 2).
    """
    return "vector" if engine == "auto" else engine


def cmd_stream(args: argparse.Namespace) -> int:
    """Measure a trace as an epoch-rotating, hash-sharded stream."""
    from repro.obs import Telemetry

    if args.trace is None:
        raise ParameterError("stream needs --trace (registry spec "
                             "`name[:key=value,...]` or a trace file)")
    trace = resolve_trace(args.trace)
    truths = trace.true_totals(args.mode)
    factory = scheme_factory(args.scheme, bits=args.bits, mode=args.mode,
                             max_length=max(truths.values()), seed=args.seed)
    tel = Telemetry() if args.telemetry else None
    result = stream(
        factory, trace,
        shards=args.shards,
        epoch_packets=args.epoch_packets,
        epoch_bytes=args.epoch_bytes,
        chunk_packets=args.chunk_packets,
        rng=args.seed + 1,
        workers=args.workers,
        engine=_stream_engine(args.engine),
        store=args.store,
        telemetry=tel,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
    )
    print(f"scheme={result.scheme_name} trace={result.trace_name} "
          f"mode={result.mode} shards={result.shards} epochs={result.epochs}")
    print(render_table(
        ["epoch", "packets", "bytes", "flows", "max bits"],
        [[s.index, s.packets, s.volume, s.flows, s.max_counter_bits]
         for s in result.snapshots],
    ))
    estimates = result.estimates_dict()
    stream_truths = result.truths()
    errors = [abs(estimates.get(key, 0.0) - truth) / truth
              for key, truth in stream_truths.items() if truth]
    if errors:
        print(f"avg R = {sum(errors) / len(errors):.4f} over "
              f"{len(errors)} flows ({result.packets} packets)")
    if tel is not None:
        snap = tel.snapshot()
        print("telemetry:")
        for name in sorted(snap["counters"]):
            print(f"  {name} = {snap['counters'][name]}")
    return 0


#: The standard audit schedule: one plan per recovery path the parallel
#: driver implements (worker death, failed attach, lost collection,
#: refused submission, refused segment).
_AUDIT_PLANS = (
    "worker.run:kill:unit=0",
    "shm.attach:raise:exception=OSError",
    "result.collect:raise:exception=BrokenProcessPool:times=1",
    "pool.submit:raise:exception=OSError",
    "shm.create:raise:exception=OSError",
)


def cmd_faults(args: argparse.Namespace) -> int:
    """Audit the parallel driver's recovery paths under injected faults.

    For each fault plan, replays an R-replica job through the pool with
    the plan armed and checks the two hard invariants: results
    bit-identical to the serial replay, and no ``repro``-prefixed
    ``/dev/shm`` segment left behind.  ``--scheme`` picks the audited
    kernel (the frozen registry factory pickles into pool workers);
    replica replays run on the vector path, so the shared ``--engine``/
    ``--store`` flags are accepted for parity but not consulted here.
    """
    import gc
    import os

    import repro.harness.parallel as parallel
    from repro.harness.parallel import ReplayJob, replay_parallel, \
        shutdown_pool
    from repro.harness.runner import replay_replicas
    from repro.obs import Telemetry
    from repro.traces.compiled import clear_compile_cache, compile_trace

    def segments():
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):
            return set()
        return {n for n in os.listdir(shm_dir)
                if n.startswith(f"repro_{os.getpid()}_")}

    # A registry factory: the same frozen spec builds the serial
    # reference and pickles into pool workers.
    audit_factory = scheme_factory(args.scheme, b=1.01, seed=7)
    trace = make_trace("scenario3", num_flows=args.flows, seed=args.seed)
    serial = replay_replicas(audit_factory(), trace,
                             replicas=args.replicas, rng=args.seed)
    expected = [r.estimates for r in serial]
    plans = args.plan or list(_AUDIT_PLANS)
    failures = 0
    saved_threshold = parallel.SHARE_THRESHOLD_BYTES
    preexisting = segments()
    for plan in plans:
        shutdown_pool()
        shm_plan = plan.split(":")[0].startswith("shm.") \
            or plan.startswith("worker.")
        # Force the shared-memory path so shm seams and worker-death
        # cleanup are actually exercised on this (small) audit trace.
        parallel.SHARE_THRESHOLD_BYTES = 0 if shm_plan else saved_threshold
        job_trace = compile_trace(trace) if shm_plan else trace
        tel = Telemetry()
        try:
            results = replay_parallel(
                [ReplayJob(audit_factory, job_trace, engine="vector",
                           replicas=args.replicas, rng=args.seed)],
                max_workers=args.workers, telemetry=tel, faults=plan)
            identical = [r.estimates for r in results] == expected
        except Exception as exc:  # an audit must never crash the CLI
            print(f"FAIL {plan}: {type(exc).__name__}: {exc}")
            failures += 1
            continue
        finally:
            parallel.SHARE_THRESHOLD_BYTES = saved_threshold
        shutdown_pool()
        del job_trace
        clear_compile_cache()  # drop the cached compiled trace too, so
        gc.collect()           # its finalizer unlinks the segment now
        leaked = segments() - preexisting
        counters = tel.snapshot()["counters"]
        recovered = sum(n for name, n in counters.items()
                        if name.startswith("recovery.")
                        or name.startswith("faults.injected."))
        ok = identical and not leaked
        print(f"{'PASS' if ok else 'FAIL'} {plan}: "
              f"bit-identical={identical} leaked-segments={len(leaked)} "
              f"fault/recovery-events={recovered}")
        if args.telemetry:
            for name in sorted(counters):
                print(f"  {name} = {counters[name]}")
        if not ok:
            failures += 1
    print(f"{len(plans) - failures}/{len(plans)} fault plans passed")
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-running measurement daemon (see docs/serve.md)."""
    from repro import faults as _faults
    from repro.serve import build_daemon, make_feed

    factory_params = dict(bits=args.bits, mode=args.mode, seed=args.seed)
    if args.feed == "trace":
        if args.trace is None:
            raise ParameterError("serve --feed trace needs --trace")
        trace = resolve_trace(args.trace)
        truths = trace.true_totals(args.mode)
        factory_params["max_length"] = max(truths.values())
        feed = make_feed("trace", trace=trace)
    elif args.feed == "generator":
        spec = args.trace if args.trace is not None \
            else f"nlanr:num_flows=300,seed={args.seed}"
        trace = resolve_trace(spec)
        if not hasattr(trace, "packet_pairs"):
            raise ParameterError(
                f"--trace {spec!r} is a chunk-only workload; feed it "
                f"through `repro stream` instead")
        truths = trace.true_totals(args.mode)
        factory_params["max_length"] = max(truths.values())
        feed = make_feed("generator",
                         pairs=trace.packet_pairs(order="shuffled",
                                                  rng=args.seed))
    else:  # socket
        feed = make_feed("socket", host=args.ingest_host,
                         port=args.ingest_port)
    factory = scheme_factory(args.scheme, **factory_params)

    plan = _faults.resolve_plan(args.faults)
    daemon = build_daemon(
        factory, feed,
        shards=args.shards,
        epoch_packets=args.epoch_packets,
        epoch_bytes=args.epoch_bytes,
        chunk_packets=args.chunk_packets,
        rng=args.seed + 1,
        workers=args.workers,
        engine=_stream_engine(args.engine),
        store=args.store,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        host=args.host,
        port=args.port,
        pace=args.pace,
    )
    if plan:
        _faults.arm(plan, daemon.telemetry)
    try:
        result = daemon.serve_forever()
    except ParameterError:
        raise
    except Exception as exc:  # crash (e.g. injected fault): report, exit 1
        print(f"serve daemon crashed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    finally:
        if plan:
            _faults.disarm()
    print(f"drained: scheme={result.scheme_name} epochs={result.epochs} "
          f"packets={result.packets} volume={result.volume}")
    if args.telemetry:
        snap = daemon.telemetry.snapshot()
        print("telemetry:")
        for name in sorted(snap["counters"]):
            print(f"  {name} = {snap['counters'][name]}")
    return 0


def _default_trace(args: argparse.Namespace):
    return make_trace("nlanr", num_flows=args.flows, mean_flow_bytes=30_000,
                      max_flow_bytes=3_000_000, seed=args.seed)


def cmd_figure(args: argparse.Namespace) -> int:
    fig = args.id
    if fig in (2, 3):
        from repro.core.analysis import cov_bound, cov_for_traffic

        if fig == 2:
            for theta in (1.0, 100.0, 500.0, 1000.0):
                series = [(10**k, cov_for_traffic(1.002, float(10**k), theta))
                          for k in range(2, 9)]
                print(render_series(f"theta={int(theta)}", series))
        else:
            series = [(b, cov_bound(b))
                      for b in (1.0005, 1.001, 1.002, 1.005, 1.01, 1.05, 1.1)]
            print(render_series("CoV bound vs b", series))
        return 0
    if fig == 4:
        rows = bound_gap(b=1.02, runs=args.runs, seed=args.seed)
        print(render_table(
            ["flow length", "bound", "mean counter", "abs gap", "rel gap"],
            [[r["flow_length"], r["bound"], r["mean_counter"],
              r["absolute_gap"], r["relative_gap"]] for r in rows],
        ))
        return 0
    if fig in (5, 6, 7):
        trace = _default_trace(args)
        rows = volume_error_vs_counter_size(trace, seed=args.seed)
        metric = {5: "average", 6: "maximum", 7: "optimistic_95"}[fig]
        print(render_table(
            ["counter bits", f"DISCO {metric} R", f"SAC {metric} R"],
            [[r.counter_bits, getattr(r.disco, metric), getattr(r.sac, metric)]
             for r in rows],
        ))
        return 0
    if fig == 8:
        trace = _default_trace(args)
        result = error_cdf_comparison(trace, counter_bits=10, seed=args.seed)
        print(render_series("DISCO CDF", result["disco"], max_points=10))
        print(render_series("SAC CDF", result["sac"], max_points=10))
        return 0
    if fig == 9:
        rows = counter_bits_vs_volume([10**k for k in range(2, 10)], b=1.002)
        print(render_table(
            ["volume", "SD bits", "SAC bits", "DISCO bits"],
            [[r["volume"], r["sd_bits"], r["sac_bits"], r["disco_bits"]]
             for r in rows],
        ))
        return 0
    if fig == 10:
        from repro.harness.experiments import flow_size_per_flow_error

        trace = _default_trace(args)
        result = flow_size_per_flow_error(trace, counter_bits=10, seed=args.seed)
        for scheme in ("disco", "sac"):
            errors = [e for _, e in result[scheme]]
            print(f"{scheme}: avg R = {sum(errors) / len(errors):.4f}, "
                  f"max R = {max(errors):.4f} over {len(errors)} flows")
        return 0
    print(f"unknown figure {fig}; figures 2-10 are available", file=sys.stderr)
    return 2


def cmd_table(args: argparse.Namespace) -> int:
    if args.id == 2:
        traces = {
            "scenario1": make_trace("scenario1", num_flows=args.flows,
                                    seed=args.seed, max_flow_packets=20_000),
            "scenario2": make_trace("scenario2",
                                    num_flows=max(20, args.flows // 3),
                                    seed=args.seed + 1),
            "scenario3": make_trace("scenario3",
                                    num_flows=max(20, args.flows // 3),
                                    seed=args.seed + 2),
            "real trace": _default_trace(args),
        }
        rows = table2(traces, seed=args.seed)
        print(render_table(
            ["scenario", "bits", "SAC R", "DISCO R"],
            [[r["scenario"], r["counter_bits"], r["sac_avg_error"],
              r["disco_avg_error"]] for r in rows],
        ))
        return 0
    if args.id == 3:
        traces = {"real trace": _default_trace(args)}
        rows = table3(traces, seed=args.seed)
        print(render_table(
            ["scenario", "var>10 frac", "ANLS-I R"],
            [[r["scenario"], r["length_variance_over_10_fraction"],
              r["anls1_avg_error"]] for r in rows],
        ))
        return 0
    if args.id == 4:
        traces = {"real trace": make_trace(
            "nlanr", num_flows=max(10, args.flows // 10),
            mean_flow_bytes=25_000, max_flow_bytes=400_000, seed=args.seed)}
        rows = table4(traces, seed=args.seed)
        print(render_table(
            ["scenario", "DISCO s", "ANLS-II s", "ratio"],
            [[r["scenario"], r["disco_seconds"], r["anls2_seconds"],
              r["ratio"]] for r in rows],
        ))
        return 0
    if args.id == 5:
        from repro.ixp.throughput import run_table5

        rows = run_table5(num_packets=args.packets, seed=args.seed)
        print(render_table(
            ["burst", "# ME", "error", "Gbps"],
            [[r.burst_description, r.num_mes, r.error, r.throughput_gbps]
             for r in rows],
        ))
        return 0
    print(f"unknown table {args.id}; tables 2-5 are available", file=sys.stderr)
    return 2


def cmd_export(args: argparse.Namespace) -> int:
    """Replay a trace through DISCO and write a flow-record export."""
    from repro.export.records import ExportBatch, write_export

    trace = resolve_trace(args.trace)
    truths = trace.true_totals(args.mode)
    scheme = make_scheme("disco", bits=args.bits, mode=args.mode,
                         max_length=max(truths.values()), seed=args.seed)
    replay(scheme, trace, rng=args.seed + 1)
    batch = ExportBatch.from_sketch(scheme)
    written = write_export(batch, args.out)
    print(f"wrote {len(batch)} records ({written} bytes) to {args.out}")
    return 0


def cmd_inspect_export(args: argparse.Namespace) -> int:
    """Print a flow-record export's contents."""
    from repro.export.records import read_export

    batch = read_export(args.path)
    print(f"mode={batch.mode} b={batch.b:.6f} records={len(batch)} "
          f"total={batch.total:.1f}")
    top = sorted(batch.records, key=lambda r: r.estimate, reverse=True)
    print(render_table(
        ["flow", "counter", "estimate"],
        [[r.key, r.counter_value, r.estimate] for r in top[: args.top]],
    ))
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Replay a trace through DISCO and checkpoint the sketch state."""
    from repro.core.checkpoint import save_sketch

    trace = resolve_trace(args.trace)
    truths = trace.true_totals(args.mode)
    scheme = make_scheme("disco", bits=args.bits, mode=args.mode,
                         max_length=max(truths.values()), seed=args.seed)
    replay(scheme, trace, rng=args.seed + 1)
    written = save_sketch(scheme, args.out)
    print(f"checkpointed {len(scheme)} flows ({written} bytes) to {args.out}")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """Sweep scheme × scenario × memory budget; regenerate docs/scenarios.md."""
    from repro.harness import scenarios as sc

    budgets = sc.QUICK_BUDGETS if args.quick else sc.FULL_BUDGETS
    seeds = sc.QUICK_SEEDS if args.quick else sc.FULL_SEEDS
    names = args.scenario or None
    print(f"scenario matrix: {', '.join(names or sc.scenario_names())} × "
          f"{len(sc.SCHEMES)} schemes × budgets {budgets} "
          f"({'quick' if args.quick else 'full'} mode)")
    rows, infos = sc.run_matrix(
        scenarios=names, budgets=budgets, seeds=seeds, quick=args.quick,
        include_native=not args.quick)
    print(sc.render_ascii(rows))
    out = args.out if args.out is not None else sc.DOC_PATH
    out.write_text(sc.render_markdown(rows, infos, quick=args.quick,
                                      seeds=seeds))
    print(f"wrote {out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import ReportConfig, write_report

    config = ReportConfig(
        nlanr_flows=args.flows,
        scenario_flows=args.scenario_flows,
        ixp_packets=args.packets,
        seed=args.seed,
        include_ixp=not args.no_ixp,
    )
    path = write_report(args.out, config)
    print(f"wrote {path}")
    return 0


# -- parser ---------------------------------------------------------------------


#: The shared measurement flags every measuring subcommand takes —
#: declared once on a parent parser so replay/stream/faults/serve can
#: never drift apart (parity is asserted in tests/test_cli.py).
COMMON_FLAGS = ("scheme", "bits", "mode", "seed", "engine", "store",
                "telemetry")

#: The shared workload flag — one parent parser so replay/stream/serve
#: spell ``--trace`` (and its registry-spec syntax) identically; parity
#: is asserted in tests/test_cli.py.
TRACE_FLAG_HELP = (
    "workload: a registry spec `name[:key=value,...]` "
    "(see repro.trace_names()) or a trace file path "
    "(.trace / .pcap)")


def _trace_parser() -> argparse.ArgumentParser:
    trace = argparse.ArgumentParser(add_help=False)
    trace.add_argument("--trace", default=None, metavar="SPEC|PATH",
                       help=TRACE_FLAG_HELP)
    return trace


def _common_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scheme", choices=SCHEMES, default="disco")
    common.add_argument("--bits", type=int, default=10)
    common.add_argument("--mode", choices=("volume", "size"), default="volume")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--engine",
                        choices=("auto", "python", "fast", "vector", "native"),
                        default="auto",
                        help="replay engine (vector = array-native batch "
                             "replay, native = compiled kernels, falls back "
                             "to vector; streaming commands resolve auto to "
                             "vector and reject the scalar engines)")
    common.add_argument("--store", choices=store_names(), default="dense",
                        help="counter-store backend for the per-flow state "
                             "(pools = lossless compact, morris = lossy "
                             "compact; compact stores need a columnar "
                             "engine)")
    common.add_argument("--telemetry", action="store_true",
                        help="record and print telemetry event counts")
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DISCO (ICDCS 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_parser()
    trace_flag = _trace_parser()

    p = sub.add_parser("gen-trace", help="generate a synthetic trace file")
    p.add_argument("--kind", choices=TRACE_KINDS, default="nlanr")
    p.add_argument("--flows", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--order", choices=("shuffled", "sequential", "roundrobin"),
                   default="shuffled")
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_gen_trace)

    p = sub.add_parser("replay", parents=[common, trace_flag],
                       help="replay a trace through a counting scheme")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "stream", parents=[common, trace_flag],
        help="measure a trace as an epoch-rotating, hash-sharded stream")
    p.add_argument("--shards", type=int, default=4,
                   help="hash-partitions of the flow space")
    p.add_argument("--epoch-packets", type=int, default=None,
                   help="rotate the epoch after this many packets")
    p.add_argument("--epoch-bytes", type=int, default=None,
                   help="rotate the epoch after this many bytes")
    p.add_argument("--chunk-packets", type=int, default=None,
                   help="packets per consumption chunk")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool workers for shard replays (default: serial)")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint file; enables crash-resumable streaming")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint if it exists")
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "serve", parents=[common, trace_flag],
        help="run the measurement daemon with a live JSON/HTTP query API")
    p.add_argument("--feed", choices=("trace", "generator", "socket"),
                   default="trace",
                   help="packet source: a trace file tail, a synthetic "
                        "generator (--trace picks its registry spec), or a "
                        "line-delimited TCP listener")
    p.add_argument("--host", default="127.0.0.1",
                   help="query-API listen address")
    p.add_argument("--port", type=int, default=0,
                   help="query-API port (0 = ephemeral, printed at startup)")
    p.add_argument("--ingest-host", default="127.0.0.1",
                   help="packet listener address for --feed socket")
    p.add_argument("--ingest-port", type=int, default=0,
                   help="packet listener port for --feed socket")
    p.add_argument("--shards", type=int, default=4,
                   help="hash-partitions of the flow space")
    p.add_argument("--epoch-packets", type=int, default=None,
                   help="rotate the epoch after this many packets")
    p.add_argument("--epoch-bytes", type=int, default=None,
                   help="rotate the epoch after this many bytes")
    p.add_argument("--chunk-packets", type=int, default=None,
                   help="packets per ingestion chunk")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool workers for shard replays (default: serial)")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint file; enables crash-resumable serving")
    p.add_argument("--checkpoint-every", type=int, default=4,
                   help="ingested chunks between scheduled checkpoints")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint if it exists")
    p.add_argument("--pace", type=float, default=0.0,
                   help="seconds slept between ingested chunks")
    p.add_argument("--faults", default=None,
                   help="fault plan to arm for the daemon's lifetime "
                        "(also honours REPRO_FAULTS)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("figure", help="regenerate a figure's data series")
    p.add_argument("id", type=int)
    p.add_argument("--flows", type=int, default=300)
    p.add_argument("--runs", type=int, default=50)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("table", help="regenerate a table's rows")
    p.add_argument("id", type=int)
    p.add_argument("--flows", type=int, default=300)
    p.add_argument("--packets", type=int, default=60_000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("export", help="replay DISCO over a trace, write flow records")
    p.add_argument("--trace", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--bits", type=int, default=12)
    p.add_argument("--mode", choices=("volume", "size"), default="volume")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("inspect-export", help="print a flow-record export")
    p.add_argument("path")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_inspect_export)

    p = sub.add_parser("checkpoint", help="replay DISCO over a trace, save sketch state")
    p.add_argument("--trace", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--bits", type=int, default=12)
    p.add_argument("--mode", choices=("volume", "size"), default="volume")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_checkpoint)

    p = sub.add_parser(
        "faults", parents=[common],
        help="audit parallel-replay recovery paths under injected faults")
    p.add_argument("--plan", action="append", default=None,
                   help="fault plan string (repeatable; default: the "
                        "standard audit schedule)")
    p.add_argument("--replicas", type=int, default=10)
    p.add_argument("--workers", type=int, default=3)
    p.add_argument("--flows", type=int, default=15)
    p.set_defaults(func=cmd_faults, seed=5)

    p = sub.add_parser(
        "scenarios",
        help="sweep scheme × scenario × memory budget; regenerate "
             "docs/scenarios.md")
    p.add_argument("--quick", action="store_true",
                   help="small workloads, fewer budgets/seeds, no native "
                        "engine pass (<60s)")
    p.add_argument("--scenario", action="append", default=None,
                   help="restrict to one scenario (repeatable; default: all)")
    p.add_argument("--out", type=Path, default=None,
                   help="markdown output path (default: the committed "
                        "docs/scenarios.md)")
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser("report", help="rerun the evaluation, write a markdown report")
    p.add_argument("--out", required=True)
    p.add_argument("--flows", type=int, default=400)
    p.add_argument("--scenario-flows", type=int, default=150)
    p.add_argument("--packets", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--no-ixp", action="store_true")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Eager-validation failures (:class:`~repro.errors.ParameterError`,
    raised by :func:`repro.facade._validate` and friends) print one line
    to stderr and exit 2 — the same code argparse uses for bad flags, so
    callers see one contract for "your arguments were wrong".
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
