"""Flow-size distribution estimation from DISCO counters.

The paper's introduction distinguishes per-flow estimates from flow size
*distribution* (FSD) work [5, 12, 22] — but a sketch full of unbiased
per-flow estimates immediately yields distribution summaries: log-binned
histograms, quantiles, and the heavy-tail diagnostics operators plot.
Because each estimate carries the Theorem-2 relative error, bins much
wider than that error are faithful; the helpers here default to
logarithmic bins for that reason.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.errors import ParameterError

__all__ = ["Histogram", "log_histogram", "quantiles", "tail_fraction"]


@dataclass(frozen=True)
class Histogram:
    """A binned distribution: edges ``e_0 < ... < e_n``, counts per bin."""

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.counts) + 1:
            raise ParameterError("need len(edges) == len(counts) + 1")

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fractions(self) -> List[float]:
        total = self.total
        if total == 0:
            return [0.0] * len(self.counts)
        return [c / total for c in self.counts]

    def bin_of(self, value: float) -> int:
        """Index of the bin containing ``value`` (clamped to the ends)."""
        if value <= self.edges[0]:
            return 0
        for i in range(len(self.counts)):
            if value < self.edges[i + 1]:
                return i
        return len(self.counts) - 1


def log_histogram(
    values: Mapping[Hashable, float],
    bins_per_decade: int = 2,
) -> Histogram:
    """Histogram of per-flow values with logarithmic bin edges.

    Edges run from the decade below the minimum to the decade above the
    maximum, ``bins_per_decade`` bins per factor of 10.
    """
    if not values:
        raise ParameterError("at least one flow is required")
    if bins_per_decade < 1:
        raise ParameterError(f"bins_per_decade must be >= 1, got {bins_per_decade!r}")
    positive = [v for v in values.values() if v > 0]
    if not positive:
        raise ParameterError("at least one positive value is required")
    lo = math.floor(math.log10(min(positive)))
    hi = math.ceil(math.log10(max(positive)) + 1e-12)
    if hi <= lo:
        hi = lo + 1
    step = 1.0 / bins_per_decade
    edges = [10 ** (lo + i * step)
             for i in range(int((hi - lo) * bins_per_decade) + 1)]
    counts = [0] * (len(edges) - 1)
    for v in positive:
        index = min(
            len(counts) - 1,
            max(0, int((math.log10(v) - lo) / step)),
        )
        counts[index] += 1
    return Histogram(edges=tuple(edges), counts=tuple(counts))


def quantiles(
    values: Mapping[Hashable, float],
    probs: Sequence[float] = (0.5, 0.9, 0.99),
) -> Dict[float, float]:
    """Empirical quantiles of the per-flow values."""
    if not values:
        raise ParameterError("at least one flow is required")
    ordered = sorted(values.values())
    out = {}
    for p in probs:
        if not (0.0 < p <= 1.0):
            raise ParameterError(f"quantile probs must be in (0, 1], got {p!r}")
        index = max(0, math.ceil(p * len(ordered)) - 1)
        out[p] = ordered[index]
    return out


def tail_fraction(values: Mapping[Hashable, float], threshold: float) -> float:
    """Fraction of flows at or above ``threshold`` (the elephant share)."""
    if not values:
        raise ParameterError("at least one flow is required")
    return sum(1 for v in values.values() if v >= threshold) / len(values)
