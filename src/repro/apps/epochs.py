"""Measurement intervals: rotate sketches, export records, diff epochs.

A monitoring component does not run one sketch forever — it measures in
intervals ("epochs"), exports per-flow records at each boundary, and
resets (the paper's counters are sized per measurement interval).  This
module provides that lifecycle plus the classic downstream use: comparing
consecutive epochs to spot traffic changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional

from repro.errors import ParameterError

__all__ = ["EpochRecord", "EpochManager", "epoch_delta"]


@dataclass(frozen=True)
class EpochRecord:
    """Exported summary of one measurement interval."""

    index: int
    packets: int
    estimates: Dict[Hashable, float]

    @property
    def flows(self) -> int:
        return len(self.estimates)

    @property
    def total(self) -> float:
        return sum(self.estimates.values())


class EpochManager:
    """Rotates a counting sketch every ``epoch_packets`` observations.

    Parameters
    ----------
    sketch_factory:
        Zero-argument callable producing a fresh sketch (anything with
        ``observe``, ``estimates`` and ``reset``).  A *factory* rather
        than an instance so each epoch gets independent randomness if the
        factory provides it.
    epoch_packets:
        Observations per epoch.
    history:
        Number of finished epoch records retained (older ones are
        dropped, as a device with bounded export buffers would).
    """

    def __init__(
        self,
        sketch_factory: Callable[[], object],
        epoch_packets: int,
        history: int = 16,
    ) -> None:
        if epoch_packets < 1:
            raise ParameterError(f"epoch_packets must be >= 1, got {epoch_packets!r}")
        if history < 1:
            raise ParameterError(f"history must be >= 1, got {history!r}")
        self._factory = sketch_factory
        self.epoch_packets = epoch_packets
        self.history = history
        self.sketch = sketch_factory()
        self._epoch_index = 0
        self._packets_in_epoch = 0
        self._records: List[EpochRecord] = []

    @property
    def current_epoch(self) -> int:
        return self._epoch_index

    @property
    def records(self) -> List[EpochRecord]:
        """Finished epochs, oldest first (bounded by ``history``)."""
        return list(self._records)

    def observe(self, flow: Hashable, length: float = 1.0) -> Optional[EpochRecord]:
        """Feed one packet; returns the finished record on a boundary."""
        if hasattr(self.sketch, "flush") and self._packets_in_epoch == 0:
            pass  # fresh epoch; nothing pending
        self.sketch.observe(flow, length)
        self._packets_in_epoch += 1
        if self._packets_in_epoch < self.epoch_packets:
            return None
        return self.rotate()

    def rotate(self) -> EpochRecord:
        """Close the current epoch now and start a fresh sketch."""
        if hasattr(self.sketch, "flush"):
            self.sketch.flush()
        record = EpochRecord(
            index=self._epoch_index,
            packets=self._packets_in_epoch,
            estimates=dict(self.sketch.estimates()),
        )
        self._records.append(record)
        if len(self._records) > self.history:
            self._records.pop(0)
        self._epoch_index += 1
        self._packets_in_epoch = 0
        self.sketch = self._factory()
        return record


def epoch_delta(
    before: EpochRecord,
    after: EpochRecord,
    min_change: float = 0.0,
) -> Dict[Hashable, float]:
    """Per-flow estimate change between two epochs.

    Positive = grew.  Flows absent from an epoch count as 0 there.
    ``min_change`` filters noise: only flows whose absolute change is at
    least that much are returned (set it from the sketch's error bound,
    e.g. ``cov_bound(b) * typical_flow`` — changes inside the error bars
    are not evidence of anything).
    """
    if min_change < 0:
        raise ParameterError(f"min_change must be >= 0, got {min_change!r}")
    flows = set(before.estimates) | set(after.estimates)
    deltas = {}
    for flow in flows:
        change = after.estimates.get(flow, 0.0) - before.estimates.get(flow, 0.0)
        if abs(change) >= min_change:
            deltas[flow] = change
    return deltas
