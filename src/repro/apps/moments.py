"""Traffic-concentration metrics from per-flow estimates.

Operators summarise a link's flow mix with scalar concentration measures:
the normalised entropy of the traffic shares (1 = perfectly even, 0 = one
flow owns the link), the Gini coefficient (the 80-20 rule as a number),
the second frequency moment F2 (DDoS/scan detectors watch its spikes), and
the top-fraction share itself.  Per-flow DISCO estimates make all of them
one pass over ``sketch.estimates()`` — this module is that pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.errors import ParameterError

__all__ = ["ConcentrationReport", "concentration", "entropy", "gini",
           "second_moment", "top_share"]


def entropy(values: Mapping[Hashable, float], normalised: bool = True) -> float:
    """Shannon entropy of the traffic shares (base 2; optionally / log2 n)."""
    positive = [v for v in values.values() if v > 0]
    if not positive:
        raise ParameterError("at least one positive value is required")
    total = sum(positive)
    h = -sum((v / total) * math.log2(v / total) for v in positive)
    if not normalised:
        return h
    if len(positive) == 1:
        return 0.0
    return h / math.log2(len(positive))


def gini(values: Mapping[Hashable, float]) -> float:
    """Gini coefficient of the per-flow totals (0 = even, ->1 = concentrated)."""
    ordered = sorted(v for v in values.values() if v >= 0)
    if not ordered:
        raise ParameterError("at least one value is required")
    total = sum(ordered)
    if total == 0:
        return 0.0
    n = len(ordered)
    cumulative = 0.0
    weighted = 0.0
    for i, v in enumerate(ordered, start=1):
        cumulative += v
        weighted += cumulative
    # Gini = 1 - 2 * (area under Lorenz curve); trapezoid form.
    return 1.0 - (2.0 * weighted - total) / (n * total)


def second_moment(values: Mapping[Hashable, float]) -> float:
    """F2 = sum of squared per-flow totals."""
    if not values:
        raise ParameterError("at least one value is required")
    return sum(v * v for v in values.values())


def top_share(values: Mapping[Hashable, float], fraction: float = 0.2) -> float:
    """Share of traffic carried by the top ``fraction`` of flows."""
    if not values:
        raise ParameterError("at least one value is required")
    if not (0.0 < fraction <= 1.0):
        raise ParameterError(f"fraction must be in (0, 1], got {fraction!r}")
    ordered = sorted(values.values(), reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0.0
    k = max(1, int(len(ordered) * fraction))
    return sum(ordered[:k]) / total


@dataclass(frozen=True)
class ConcentrationReport:
    """All the concentration scalars for one estimate map."""

    flows: int
    total: float
    normalised_entropy: float
    gini: float
    second_moment: float
    top20_share: float


def concentration(values: Mapping[Hashable, float]) -> ConcentrationReport:
    """One-pass summary of a per-flow estimate map."""
    if not values:
        raise ParameterError("at least one flow is required")
    return ConcentrationReport(
        flows=len(values),
        total=sum(values.values()),
        normalised_entropy=entropy(values),
        gini=gini(values),
        second_moment=second_moment(values),
        top20_share=top_share(values, 0.2),
    )
