"""Usage accounting with error bars — the subpopulation query, productised.

The paper's intro motivates per-flow counters with flow-specific queries
such as "accurate size estimation for a particular flow or a
subpopulation".  This module maps flows to *accounts* (customers,
prefixes, applications) and produces per-account usage totals with
confidence intervals, built on
:func:`repro.metrics.weighted.subpopulation_estimate`.

Because DISCO is unbiased, account totals over many flows concentrate:
the relative error of a bill over ``m`` similar flows shrinks like
``1/sqrt(m)`` even though each flow individually carries the Theorem-2
error.  :class:`UsageAccountant` exposes exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional

from repro.core.confidence import z_for_confidence
from repro.errors import ParameterError
from repro.metrics.weighted import SubpopulationEstimate, subpopulation_estimate

__all__ = ["AccountBill", "UsageAccountant"]


@dataclass(frozen=True)
class AccountBill:
    """One account's usage with an uncertainty band."""

    account: Hashable
    usage: float
    low: float
    high: float
    flows: int
    level: float

    @property
    def relative_half_width(self) -> float:
        if self.usage == 0:
            return 0.0
        return (self.high - self.low) / (2.0 * self.usage)


class UsageAccountant:
    """Maps flows to accounts and bills from a DISCO sketch.

    Parameters
    ----------
    sketch:
        A DISCO-style sketch (``DiscoSketch``, ``HardwareDiscoSketch``,
        ``DiscoBrick``) that packets are fed through elsewhere.
    account_of:
        Function mapping a flow key to its account key.
    """

    def __init__(self, sketch, account_of: Callable[[Hashable], Hashable]) -> None:
        if not callable(account_of):
            raise ParameterError("account_of must be callable")
        self.sketch = sketch
        self.account_of = account_of

    def _accounts(self) -> Dict[Hashable, List[Hashable]]:
        members: Dict[Hashable, List[Hashable]] = {}
        for flow in self.sketch.flows():
            members.setdefault(self.account_of(flow), []).append(flow)
        return members

    def bill(self, account: Hashable, level: float = 0.95,
             flows: Optional[Iterable[Hashable]] = None) -> AccountBill:
        """Usage bill for one account.

        ``flows`` overrides membership discovery (e.g. to bill a fixed
        contract flow list including flows the sketch never saw).
        """
        if flows is None:
            flows = self._accounts().get(account, [])
        member_list = list(flows)
        estimate: SubpopulationEstimate = subpopulation_estimate(
            self.sketch, member_list
        )
        z = z_for_confidence(level)
        low, high = estimate.interval(z=z)
        return AccountBill(
            account=account,
            usage=estimate.total,
            low=low,
            high=high,
            flows=estimate.flows,
            level=level,
        )

    def bill_all(self, level: float = 0.95) -> List[AccountBill]:
        """Bills for every account seen by the sketch, largest first."""
        bills = [
            self.bill(account, level=level, flows=members)
            for account, members in self._accounts().items()
        ]
        bills.sort(key=lambda b: b.usage, reverse=True)
        return bills

    def total_traffic(self, level: float = 0.95) -> AccountBill:
        """One bill over every flow — the link-total estimate."""
        return self.bill("__total__", level=level,
                         flows=list(self.sketch.flows()))
