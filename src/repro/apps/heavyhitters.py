"""On-line heavy-hitter detection on top of DISCO counters.

The property that distinguishes DISCO from SD (slow DRAM reads) and from
Counter Braids (offline decode) is the **per-packet on-line read**: after
every update the flow's estimate is one ``f(c)`` evaluation away.  This
module builds the canonical application on that property — detecting flows
whose size/volume crosses a threshold *while they are happening* — plus a
top-k tracker.

Detection uses the confidence machinery of :mod:`repro.core.confidence`:
a flow is reported when the *lower* edge of its confidence interval
crosses the threshold (few false positives) or optimistically when the
estimate itself does (few false negatives); the policy is a parameter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.confidence import confidence_interval
from repro.core.disco import DiscoSketch
from repro.errors import ParameterError

__all__ = ["Detection", "HeavyHitterDetector", "top_k"]


@dataclass(frozen=True)
class Detection:
    """One threshold crossing."""

    flow: Hashable
    estimate: float
    packet_index: int
    counter_value: int


class HeavyHitterDetector:
    """Streaming threshold detector over a :class:`DiscoSketch`.

    Parameters
    ----------
    sketch:
        The DISCO sketch packets are fed through (owned by the caller;
        the detector only reads it).
    threshold:
        Size/volume (in the sketch's counting mode units) above which a
        flow is a heavy hitter.
    policy:
        ``"estimate"`` — report when ``f(c)`` crosses the threshold;
        ``"confident"`` — report when the *lower* confidence bound does
        (suppresses false positives at the price of reporting later).
    level:
        Confidence level for the ``"confident"`` policy.
    """

    def __init__(
        self,
        sketch: DiscoSketch,
        threshold: float,
        policy: str = "estimate",
        level: float = 0.95,
    ) -> None:
        if not (threshold > 0):
            raise ParameterError(f"threshold must be > 0, got {threshold!r}")
        if policy not in ("estimate", "confident"):
            raise ParameterError(f"policy must be 'estimate' or 'confident', got {policy!r}")
        b = getattr(getattr(sketch, "function", None), "b", None)
        if b is None:
            raise ParameterError("sketch must use a geometric counting function")
        self.sketch = sketch
        self.threshold = threshold
        self.policy = policy
        self.level = level
        self._b = b
        self._reported: Dict[Hashable, Detection] = {}
        self._packets = 0

    def observe(self, flow: Hashable, length: float = 1.0) -> Optional[Detection]:
        """Feed one packet; returns a Detection the first time a flow crosses."""
        self.sketch.observe(flow, length)
        self._packets += 1
        if flow in self._reported:
            return None
        c = self.sketch.counter_value(flow)
        estimate = self.sketch.estimate(flow)
        if self.policy == "estimate":
            crossing = estimate >= self.threshold
        else:
            ci = confidence_interval(self._b, c, level=self.level)
            crossing = ci.low >= self.threshold
        if not crossing:
            return None
        detection = Detection(
            flow=flow,
            estimate=estimate,
            packet_index=self._packets,
            counter_value=c,
        )
        self._reported[flow] = detection
        return detection

    @property
    def detections(self) -> List[Detection]:
        """All detections so far, in report order."""
        return sorted(self._reported.values(), key=lambda d: d.packet_index)

    def evaluate(self, truths: Dict[Hashable, float]) -> Dict[str, float]:
        """Precision/recall against ground-truth flow totals."""
        if not truths:
            raise ParameterError("at least one flow is required")
        actual = {f for f, n in truths.items() if n >= self.threshold}
        reported = set(self._reported)
        true_positives = len(actual & reported)
        precision = true_positives / len(reported) if reported else 1.0
        recall = true_positives / len(actual) if actual else 1.0
        return {
            "precision": precision,
            "recall": recall,
            "reported": float(len(reported)),
            "actual": float(len(actual)),
        }


def top_k(sketch, k: int) -> List[Tuple[Hashable, float]]:
    """The k flows with the largest estimates, descending.

    Works on anything exposing ``estimates() -> dict``; O(n log k).
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k!r}")
    estimates = sketch.estimates()
    return heapq.nlargest(k, estimates.items(), key=lambda kv: kv[1])
