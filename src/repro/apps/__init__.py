"""Applications built on DISCO's on-line estimates.

* :mod:`repro.apps.heavyhitters` — streaming threshold detection, top-k.
* :mod:`repro.apps.billing` — per-account usage with confidence bands.
* :mod:`repro.apps.epochs` — measurement intervals, export, epoch diffs.
"""

from repro.apps.anomaly import ChangeDetector, TrafficChange
from repro.apps.billing import AccountBill, UsageAccountant
from repro.apps.distribution import Histogram, log_histogram, quantiles, tail_fraction
from repro.apps.epochs import EpochManager, EpochRecord, epoch_delta
from repro.apps.heavyhitters import Detection, HeavyHitterDetector, top_k
from repro.apps.moments import (
    ConcentrationReport,
    concentration,
    entropy,
    gini,
    second_moment,
    top_share,
)

__all__ = [
    "Detection",
    "HeavyHitterDetector",
    "top_k",
    "AccountBill",
    "UsageAccountant",
    "EpochManager",
    "EpochRecord",
    "epoch_delta",
    "Histogram",
    "log_histogram",
    "quantiles",
    "tail_fraction",
    "ChangeDetector",
    "TrafficChange",
    "ConcentrationReport",
    "concentration",
    "entropy",
    "gini",
    "second_moment",
    "top_share",
]
