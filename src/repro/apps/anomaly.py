"""Error-aware traffic-change detection across measurement epochs.

Diffing two epochs' estimates (``repro.apps.epochs.epoch_delta``) flags
raw changes; an operator also needs to know which changes are *real* —
larger than the estimators' own noise.  DISCO makes that decidable: each
epoch estimate carries a Theorem-2 relative error, so a change is
significant when it exceeds ``z`` combined standard deviations.

This is the measurement-backed version of the load-change detection that
sampling papers (Choi et al., SIGMETRICS 2002 — reference [1] of the
DISCO paper) built on adaptive sampling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List

from repro.core.analysis import coefficient_of_variation
from repro.core.confidence import z_for_confidence
from repro.core.functions import GeometricCountingFunction
from repro.errors import ParameterError

__all__ = ["TrafficChange", "ChangeDetector"]


@dataclass(frozen=True)
class TrafficChange:
    """A statistically significant per-flow change between two epochs."""

    flow: Hashable
    before: float
    after: float
    change: float
    sigma: float
    z_score: float

    @property
    def direction(self) -> str:
        return "up" if self.change > 0 else "down"


class ChangeDetector:
    """Flags flows whose epoch-to-epoch change exceeds the noise floor.

    Parameters
    ----------
    b:
        The DISCO base both epochs were measured with (sets the noise
        model via Theorem 2).
    level:
        Two-sided confidence level for significance (default 99%: change
        alarms should be quiet).
    min_change:
        Absolute floor below which changes are never reported, whatever
        their z-score (filters significant-but-irrelevant mice moves).
    """

    def __init__(self, b: float, level: float = 0.99,
                 min_change: float = 0.0) -> None:
        if min_change < 0:
            raise ParameterError(f"min_change must be >= 0, got {min_change!r}")
        self.function = GeometricCountingFunction(b)
        self.b = b
        self.z = z_for_confidence(level)
        self.level = level
        self.min_change = min_change

    def _sigma_of(self, estimate: float) -> float:
        """Estimator stddev for an epoch estimate (Theorem 2 at its counter)."""
        if estimate <= 0:
            return 0.0
        counter = int(round(self.function.inverse(estimate)))
        return coefficient_of_variation(self.b, counter) * estimate

    def compare(
        self,
        before: Dict[Hashable, float],
        after: Dict[Hashable, float],
    ) -> List[TrafficChange]:
        """Significant changes between two epochs' estimate maps.

        Flows absent from an epoch count as 0 there (births and deaths are
        changes too).  Results are sorted by |z|, largest first.
        """
        changes: List[TrafficChange] = []
        for flow in set(before) | set(after):
            x = before.get(flow, 0.0)
            y = after.get(flow, 0.0)
            change = y - x
            if abs(change) < self.min_change or change == 0.0:
                continue
            sigma = math.hypot(self._sigma_of(x), self._sigma_of(y))
            if sigma == 0.0:
                z_score = math.inf
            else:
                z_score = abs(change) / sigma
            if z_score >= self.z:
                changes.append(TrafficChange(
                    flow=flow, before=x, after=y, change=change,
                    sigma=sigma, z_score=z_score,
                ))
        changes.sort(key=lambda c: c.z_score, reverse=True)
        return changes

    def compare_records(self, before, after) -> List[TrafficChange]:
        """Convenience overload for :class:`repro.apps.epochs.EpochRecord`."""
        return self.compare(before.estimates, after.estimates)
