"""Epoch-based, hash-sharded streaming measurement sessions.

Every other entrypoint in this repo replays a whole in-memory trace and
returns one terminal result.  The paper's deployment shape is different:
DISCO counters live in per-linecard SRAM, are updated continuously, and
are **exported and reset** once per measurement epoch.  This module
reproduces that shape on top of the columnar kernel stack:

* A :class:`StreamSession` consumes packets *incrementally* — chunked
  views over a :class:`~repro.traces.compiled.CompiledTrace`
  (:meth:`~repro.traces.compiled.CompiledTrace.iter_chunks`) or any
  ``(flow, length)`` iterable — so traces never need to fit one replay
  call.
* The flow space is partitioned across ``S`` shards by
  :func:`repro.flows.hashing.stable_hash`; each chunk drives every
  touched shard through one columnar
  :func:`~repro.core.batchreplay.run_kernel` pass, carrying per-flow
  kernel state between chunks via
  :meth:`~repro.core.kernels.SchemeKernel.export_state` /
  ``load_state`` (the ``resume=`` hook).
* Shard-chunk replays run serially or over the persistent process pool
  (:func:`repro.harness.parallel.run_tasks`).  Each replay's random
  stream is a pure ``SeedSequence`` child keyed by
  ``(epoch, shard, chunk)``, so serial and pooled execution consume
  identical streams — same seed, same estimates, bit for bit.
* Epochs rotate on packet-count or byte watermarks (quantised to chunk
  boundaries); every rotation reads the shards out into a mergeable
  :class:`EpochSnapshot` and resets them — the paper's
  export-and-reset.
* ``checkpoint_path=`` persists the session after each chunk
  (atomically: temp file + ``os.replace``), and
  :meth:`StreamSession.restore` resumes a killed session
  deterministically — the resumed run replays the exact chunk schedule
  the uninterrupted run would have, with the same per-chunk seeds.

Determinism
-----------
For the exact kernel, epoch totals summed across snapshots equal a
single ``replay()`` of the whole trace bit-for-bit (integer sums are
associative and epoch subtotals stay far below 2^53).  Probabilistic
kernels are *same-seed deterministic*: a given (seed, shard count,
chunk size, watermark) configuration always produces identical
estimates — serial, pooled, interrupted-and-resumed alike — but a
different sharding or chunking consumes the random streams differently,
exactly as the columnar engine already relates to the scalar one.

Failure injection
-----------------
Two seams (:mod:`repro.faults`): ``shard.run`` fires per dispatched
shard (parent side, with the shard index), ``checkpoint.write`` fires
between serialising a checkpoint and atomically publishing it — a
fault there leaves the previous checkpoint intact, which is the crash
the resume tests rehearse.  Events appear as ``stream.*`` telemetry
(see ``docs/telemetry.md``).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro import faults as _faults
from repro import obs
from repro.core.batchreplay import run_kernel
from repro.core.kernels import KernelState, kernel_scheme_names, kernel_spec
from repro.errors import ParameterError
from repro.flows.hashing import stable_hash
from repro.traces.compiled import CompiledTrace, compile_trace
from repro.traces.trace import Trace

__all__ = ["StreamSession", "StreamResult", "EpochSnapshot",
           "DEFAULT_CHUNK_PACKETS"]

#: Default packets per consumption chunk.  Large enough that the columnar
#: pass dominates the per-chunk Python routing, small enough that epoch
#: watermarks stay reasonably sharp.
DEFAULT_CHUNK_PACKETS = 8192

_CHECKPOINT_MAGIC = "repro-stream-checkpoint"
_CHECKPOINT_VERSION = 1


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EpochSnapshot:
    """One epoch's export: per-shard estimates, truths, counter widths.

    The mergeable unit of a stream — :class:`repro.export.collector
    .Collector` ingests snapshots as intervals, and
    :meth:`StreamResult.estimates_dict` sums them.  Satisfies
    :class:`repro.results.MeasurementResult`.
    """

    index: int
    scheme_name: str
    mode: str
    packets: int
    volume: int
    shards: int
    #: Per-shard ``{flow: estimate}`` read-outs; shards partition the
    #: flow space, so the mappings are key-disjoint.
    shard_estimates: Tuple[Dict[Hashable, float], ...]
    #: Per-shard maximum counter bit-width at rotation (0 = empty shard).
    shard_counter_bits: Tuple[int, ...]
    #: Ground truth accumulated over the epoch (size or volume per mode).
    truths: Dict[Hashable, int] = field(compare=False)
    telemetry: Optional[Dict[str, dict]] = field(default=None, compare=False,
                                                 repr=False)
    #: Counter-store backend the carried state was held in
    #: (``"dense"``/``"pools"``/``"morris"``); ``None`` on snapshots
    #: unpickled from pre-store checkpoints.  Merge guards (the export
    #: :class:`~repro.export.collector.Collector`) refuse to mix
    #: snapshots whose scheme or store differ.
    store: Optional[str] = field(default=None, compare=False)

    @property
    def flows(self) -> int:
        return sum(len(est) for est in self.shard_estimates)

    @property
    def max_counter_bits(self) -> int:
        return max(self.shard_counter_bits, default=0)

    def estimates_dict(self) -> Dict[Hashable, float]:
        """The epoch's estimates, shards merged (disjoint keys)."""
        merged: Dict[Hashable, float] = {}
        for estimates in self.shard_estimates:
            merged.update(estimates)
        return merged

    def to_json(self) -> Dict[str, object]:
        from repro.results import estimates_json

        return {
            "type": "epoch",
            "index": int(self.index),
            "scheme": self.scheme_name,
            "mode": self.mode,
            "packets": int(self.packets),
            "volume": int(self.volume),
            "shards": int(self.shards),
            "flows": int(self.flows),
            "max_counter_bits": int(self.max_counter_bits),
            "shard_counter_bits": [int(b) for b in self.shard_counter_bits],
            "store": self.store,
            "estimates": estimates_json(self.estimates_dict()),
            "telemetry": self.telemetry,
        }


@dataclass(frozen=True)
class StreamResult:
    """Terminal outcome of a stream: every epoch plus merged views.

    Satisfies :class:`repro.results.MeasurementResult`;
    ``estimates_dict()`` sums each flow across epochs (for the exact
    kernel that equals a one-shot replay bit-for-bit), and
    :meth:`collector` exposes the same merge through the export-side
    :class:`~repro.export.collector.Collector` interval machinery.
    """

    scheme_name: str
    trace_name: str
    mode: str
    shards: int
    snapshots: Tuple[EpochSnapshot, ...]
    packets: int
    volume: int
    elapsed_seconds: float
    telemetry: Optional[Dict[str, dict]] = field(default=None, compare=False,
                                                 repr=False)

    @property
    def epochs(self) -> int:
        return len(self.snapshots)

    @property
    def max_counter_bits(self) -> int:
        return max((s.max_counter_bits for s in self.snapshots), default=0)

    def estimates_dict(self) -> Dict[Hashable, float]:
        """Per-flow totals across every epoch (snapshot order)."""
        totals: Dict[Hashable, float] = {}
        for snapshot in self.snapshots:
            for key, estimate in snapshot.estimates_dict().items():
                totals[key] = totals.get(key, 0.0) + estimate
        return totals

    def truths(self) -> Dict[Hashable, int]:
        """Ground truth totals across every epoch."""
        totals: Dict[Hashable, int] = {}
        for snapshot in self.snapshots:
            for key, value in snapshot.truths.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def collector(self):
        """The epochs as intervals in an export-side ``Collector``.

        Flow keys are stringified (the export record convention);
        per-flow interval series and totals then come from the standard
        collector queries.
        """
        from repro.export.collector import Collector

        collector = Collector()
        for snapshot in self.snapshots:
            collector.ingest_snapshot(snapshot)
        return collector

    def to_json(self) -> Dict[str, object]:
        from repro.results import estimates_json

        return {
            "type": "stream",
            "scheme": self.scheme_name,
            "trace": self.trace_name,
            "mode": self.mode,
            "shards": int(self.shards),
            "epochs": int(self.epochs),
            "packets": int(self.packets),
            "volume": int(self.volume),
            "elapsed_seconds": float(self.elapsed_seconds),
            "max_counter_bits": int(self.max_counter_bits),
            "estimates": estimates_json(self.estimates_dict()),
            "epoch_packets": [int(s.packets) for s in self.snapshots],
            "telemetry": self.telemetry,
        }


# ---------------------------------------------------------------------------
# shard-chunk work items (module-level: must pickle into pool workers)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ShardChunkTask:
    """One shard's slice of one chunk: a resumable columnar replay."""

    shard: int
    index: int  # == shard; the fault-targeting unit id
    scheme_factory: Callable[[], object]
    trace: CompiledTrace
    mode: str
    rng: np.random.SeedSequence
    state: Optional[KernelState]
    telemetry: bool
    #: Columnar backend for this chunk ("vector" or "native"); defaulted
    #: so checkpoints and pickles from older sessions keep loading.
    engine: str = "vector"
    #: Counter-store backend the carried-out state is encoded in
    #: (``None`` = dense); defaulted for the same pickle compatibility.
    store: Optional[str] = None


def _run_shard_chunk(task: _ShardChunkTask):
    """Replay one shard-chunk, returning its carried-out kernel state.

    The replay itself always runs on dense columns (the scratch view —
    carried compact state was decoded by ``load_state``); only the
    carry-*out* between chunks is re-encoded through the task's counter
    store, so compact backends pay encode/decode once per chunk
    boundary, never per packet.
    """
    tel = obs.Telemetry() if task.telemetry else None
    scheme = task.scheme_factory()
    spec = kernel_spec(scheme)
    if spec is None:  # unreachable after session-probe; defend anyway
        raise ParameterError(
            f"scheme {getattr(scheme, 'name', type(scheme).__name__)!r} "
            f"lost its kernel between probe and replay")
    result = run_kernel(task.trace, spec.factory, mode=task.mode,
                        rng=task.rng, telemetry=tel, resume=task.state,
                        engine=task.engine)
    state = result.kernel.export_state(task.trace.keys,
                                       store=getattr(task, "store", None))
    return task.shard, state, (tel.snapshot() if tel is not None else None)


def _readout(spec, state: KernelState) -> Tuple[Dict[Hashable, float], int]:
    """Decode a carried shard state: estimates plus max counter width.

    Loads the state into a fresh kernel (no packets replayed, so the
    throwaway generator is never drawn from) and reads the estimator
    surface — the rotation-time export.
    """
    keys = list(state.index)
    R = state.replicas
    kernel = spec.factory(len(keys) * R, np.random.default_rng(0), R)
    kernel.load_state(keys, state)
    lane_estimates = kernel.estimates()[::R]
    estimates = {key: float(e) for key, e in zip(keys, lane_estimates)}
    max_counter = int(kernel.counters().max(initial=0))
    bits = max_counter.bit_length() if max_counter > 0 else 0
    return estimates, bits


def _readout_counters(spec, state: KernelState) -> Dict[Hashable, int]:
    """Decode a carried shard state into raw per-flow counter values.

    The query-side companion of :func:`_readout`: the serve daemon needs
    the *counter* (not the estimate) to attach a
    :func:`~repro.core.confidence.confidence_interval` to a live flow.
    """
    keys = list(state.index)
    R = state.replicas
    kernel = spec.factory(len(keys) * R, np.random.default_rng(0), R)
    kernel.load_state(keys, state)
    counters = kernel.counters()[::R]
    return {key: int(c) for key, c in zip(keys, counters)}


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------

class StreamSession:
    """An incremental, epoch-rotating, hash-sharded measurement session.

    Build one with a zero-argument ``scheme_factory`` (prefer
    :func:`repro.scheme_factory` — it survives pickling into pool
    workers and checkpoints), feed it packets with :meth:`consume` /
    :meth:`extend`, and close it with :meth:`finish`.  The high-level
    wrapper is :func:`repro.stream`.

    Parameters
    ----------
    scheme_factory:
        Zero-argument callable building a fresh scheme; the scheme must
        expose a *resumable* columnar kernel (every in-tree kernel is).
    shards:
        Number of hash-partitions of the flow space; each shard is one
        independent counter array, replayed per chunk.
    epoch_packets / epoch_bytes:
        Rotation watermarks — close the epoch once it has consumed this
        many packets / bytes.  Either, both (first reached wins) or
        neither (one epoch per :meth:`finish`).  Rotation is quantised
        to chunk boundaries.
    chunk_packets:
        Packets consumed per internal chunk (the replay granularity).
    rng:
        Any :func:`repro.seed_streams` convention; the per-(epoch,
        shard, chunk) replay streams are pure ``SeedSequence`` children
        of its root.
    workers:
        ``None``/``1`` = replay shards serially in-process; ``>= 2`` =
        fan shard-chunk replays over the persistent process pool (same
        seeds, bit-identical results).
    engine:
        Columnar backend for shard-chunk replays: ``"vector"`` (default)
        or ``"native"`` (:mod:`repro.core.native`; falls back to
        ``"vector"`` with a one-time warning when no provider is
        available).  Carried kernel state round-trips through native
        chunks unchanged, so mixing backends across a resume is safe.
    store:
        Counter-store backend for the carried per-flow state
        (:mod:`repro.core.stores`): ``"dense"``/``None`` keeps the live
        arrays (default, zero regression); ``"pools"`` (lossless
        variable-width Counter Pools) or ``"morris"`` (lossy unbiased
        floating-point counters) encode the carry-state and checkpoints
        compactly — replays still run on dense scratch columns, the
        store pays once per chunk boundary.  Persisted in checkpoints
        and restored with the session.
    telemetry:
        Optional :class:`repro.obs.Telemetry` session; ``stream.*``
        events plus the per-chunk kernel events are recorded per epoch
        (each snapshot carries its epoch's events).
    checkpoint_path:
        When set, the session checkpoints itself after every
        ``checkpoint_every`` chunks (and at :meth:`finish`), atomically;
        :meth:`restore` rebuilds a session from the file.
    """

    def __init__(
        self,
        scheme_factory: Callable[[], object],
        *,
        shards: int = 1,
        epoch_packets: Optional[int] = None,
        epoch_bytes: Optional[int] = None,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
        rng=None,
        workers: Optional[int] = None,
        engine: str = "vector",
        store: Optional[str] = None,
        telemetry: Optional[obs.Telemetry] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        name: str = "stream",
    ) -> None:
        from repro.core import native
        from repro.core import stores as _stores
        from repro.facade import _validate, seed_streams

        if not callable(scheme_factory):
            raise ParameterError(
                f"scheme_factory must be callable, got {scheme_factory!r}")
        _validate(shards=shards, chunk_packets=chunk_packets,
                  epoch_packets=epoch_packets, epoch_bytes=epoch_bytes,
                  workers=workers, checkpoint_every=checkpoint_every,
                  stream_engine=engine)
        if engine == "native" and not native.available():
            native.warn_fallback("stream engine='native'")
            engine = "vector"
        compact_store = _stores.resolve_store(store)  # eager ParameterError

        scheme = scheme_factory()
        spec = kernel_spec(scheme)
        if spec is None:
            raise ParameterError(
                f"scheme {getattr(scheme, 'name', type(scheme).__name__)!r} "
                f"has no columnar kernel; streaming needs one of: "
                f"{', '.join(kernel_scheme_names())}")
        probe = spec.factory(1, np.random.default_rng(0), 1)
        if not getattr(probe, "resumable", False):
            raise ParameterError(
                f"{type(probe).__name__} does not support resumable state; "
                f"streaming needs a resumable kernel")
        if (workers is not None and workers > 1) or checkpoint_path is not None:
            try:
                pickle.dumps(scheme_factory)
            except Exception:
                raise ParameterError(
                    "parallel or checkpointed streams need a picklable "
                    "scheme factory; build one with repro.scheme_factory()"
                ) from None

        self.scheme_factory = scheme_factory
        self.scheme_name = getattr(scheme, "name", type(scheme).__name__)
        self.mode = spec.mode
        self._spec = spec
        self.shards = shards
        self.epoch_packets = epoch_packets
        self.epoch_bytes = epoch_bytes
        self.chunk_packets = chunk_packets
        self.workers = workers
        self.engine = engine
        #: Canonical compact-store name, or ``None`` for dense state.
        self._store = compact_store
        self.store = compact_store or _stores.DEFAULT_STORE
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.name = name
        self.trace_name = name

        self._root = seed_streams(rng).root()
        self._root_key = tuple(self._root.spawn_key)

        self._session = obs.resolve(telemetry)
        self._enabled = self._session.enabled
        self._epoch_tel = obs.Telemetry() if self._enabled else obs.NULL_TELEMETRY
        self._total_tel = obs.Telemetry() if self._enabled else obs.NULL_TELEMETRY

        self._shard_of: Dict[Hashable, int] = {}
        self._keys: List[Dict[Hashable, None]] = [dict() for _ in range(shards)]
        self._state: List[Optional[KernelState]] = [None] * shards
        self._truths: List[Dict[Hashable, int]] = [dict() for _ in range(shards)]

        self.snapshots: List[EpochSnapshot] = []
        self.epoch_index = 0
        self.packets_consumed = 0
        self.volume_consumed = 0
        self.elapsed_seconds = 0.0
        self._chunk_in_epoch = 0
        self._epoch_packet_count = 0
        self._epoch_volume_count = 0
        self._chunks_since_checkpoint = 0
        self._resume_skip = 0

    # -- feeding -------------------------------------------------------------

    def consume(self, source: Union[Trace, CompiledTrace, Iterable]) -> None:
        """Feed packets from a trace (fast columnar chunks) or an iterable.

        Traces stream through zero-copy
        :meth:`~repro.traces.compiled.CompiledTrace.iter_chunks` views in
        compiled (flow-major) packet order.  Any other chunk provider —
        an object exposing ``iter_chunks(chunk_packets, start=)`` and
        ``num_packets``, such as the chunk-only
        :class:`repro.traces.toolkit.BigTrace` — streams the same way
        without ever materialising a trace.  Any other iterable of
        ``(flow, length)`` pairs goes through :meth:`extend`.  A restored
        session transparently skips the prefix it already consumed — pass
        the same trace and the stream continues where the checkpoint left
        off.
        """
        if isinstance(source, Trace):
            source = compile_trace(source)
        if hasattr(source, "iter_chunks"):
            if self.trace_name == self.name:
                self.trace_name = getattr(source, "name", self.name)
            skip = min(self._resume_skip, source.num_packets)
            self._resume_skip -= skip
            for chunk in source.iter_chunks(self.chunk_packets, start=skip):
                self._ingest(chunk.keys, chunk.lengths)
        else:
            self.extend(source)

    def extend(self, pairs: Iterable[Tuple[Hashable, float]]) -> None:
        """Consume an iterable of ``(flow, length)`` pairs, chunking internally.

        The generic path for live feeds and generators — e.g.
        :meth:`Trace.packet_chunks <repro.traces.trace.Trace
        .packet_chunks>` batches, or pairs straight off a capture loop.
        """
        batch_keys: List[Hashable] = []
        batch_map: Dict[Hashable, List[float]] = {}
        count = 0
        for key, length in pairs:
            if self._resume_skip > 0:
                self._resume_skip -= 1
                continue
            lens = batch_map.get(key)
            if lens is None:
                batch_map[key] = lens = []
                batch_keys.append(key)
            lens.append(float(length))
            count += 1
            if count >= self.chunk_packets:
                self._ingest(batch_keys,
                             [np.asarray(batch_map[k], dtype=np.float64)
                              for k in batch_keys])
                batch_keys, batch_map, count = [], {}, 0
        if count:
            self._ingest(batch_keys,
                         [np.asarray(batch_map[k], dtype=np.float64)
                          for k in batch_keys])

    def ingest_chunk(self, keys: List[Hashable],
                     length_arrays: List[np.ndarray]) -> None:
        """Consume one pre-batched chunk: parallel key / length-array lists.

        The chunk-at-a-time feeding surface (used by :mod:`repro.serve`
        feeds, which batch upstream): ``keys[i]`` is a flow key and
        ``length_arrays[i]`` its packet lengths for this chunk, exactly
        the shape :meth:`~repro.traces.compiled.CompiledTrace.iter_chunks`
        yields.  Watermark rotation and auto-checkpointing apply as for
        :meth:`consume`.
        """
        if len(keys) != len(length_arrays):
            raise ParameterError(
                f"ingest_chunk needs parallel lists; got {len(keys)} keys "
                f"and {len(length_arrays)} length arrays")
        if keys:
            self._ingest(list(keys),
                         [np.asarray(lens, dtype=np.float64)
                          for lens in length_arrays])

    # -- live queries --------------------------------------------------------

    def live_estimates(self) -> Dict[Hashable, float]:
        """Per-flow estimates for the *open* (not yet rotated) epoch.

        Decodes the carried shard states without resetting them — the
        read side of the serve daemon's ``/flows`` and ``/topk`` while
        ingestion continues.  Consistent at chunk boundaries: the
        daemon's single-threaded loop never interleaves a query with a
        half-applied chunk.
        """
        merged: Dict[Hashable, float] = {}
        for state in self._state:
            if state is None or not state.index:
                continue
            estimates, _ = _readout(self._spec, state)
            merged.update(estimates)
        return merged

    def live_counters(self) -> Dict[Hashable, int]:
        """Raw per-flow counter values for the open epoch.

        The companion of :meth:`live_estimates` for confidence
        intervals: :func:`~repro.core.confidence.confidence_interval`
        takes the counter value, not the estimate.
        """
        merged: Dict[Hashable, int] = {}
        for state in self._state:
            if state is None or not state.index:
                continue
            merged.update(_readout_counters(self._spec, state))
        return merged

    # -- internals -----------------------------------------------------------

    def _shard(self, key: Hashable) -> int:
        shard = self._shard_of.get(key)
        if shard is None:
            shard = stable_hash(key) % self.shards
            self._shard_of[key] = shard
        return shard

    def _shard_chunk_trace(self, shard: int,
                           chunk_flows: Dict[Hashable, np.ndarray],
                           ) -> CompiledTrace:
        """Compile one shard's slice of the chunk.

        The trace covers *every* key the shard has seen this epoch —
        keys absent from the chunk get zero-packet rows — so the
        carried-out :class:`KernelState` always spans the shard's full
        epoch key set (SAC's global renormalisation re-encodes every
        lane; a partial export would decode stale words under a newer
        scale).
        """
        keys = list(self._keys[shard])
        n = len(keys)
        raw_sizes = np.fromiter(
            (chunk_flows[k].size if k in chunk_flows else 0 for k in keys),
            dtype=np.int64, count=n)
        order = np.argsort(-raw_sizes, kind="stable")
        sorted_keys = [keys[i] for i in order]
        sizes = raw_sizes[order]
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        lengths = np.empty(int(offsets[-1]), dtype=np.float64)
        for row, key in enumerate(sorted_keys):
            if sizes[row]:
                lengths[offsets[row]:offsets[row + 1]] = chunk_flows[key]
        # reduceat is only safe on the non-empty segments: zero-size rows
        # sort to the end, so the non-empty offsets tile `lengths` exactly.
        volumes = np.zeros(n, dtype=np.int64)
        nonzero = np.flatnonzero(sizes > 0)
        if nonzero.size:
            volumes[nonzero] = np.add.reduceat(
                lengths, offsets[:-1][nonzero]).astype(np.int64)
        return CompiledTrace(name=f"{self.name}:shard{shard}",
                             keys=sorted_keys, lengths=lengths,
                             offsets=offsets, sizes=sizes, volumes=volumes)

    def _ingest(self, keys: List[Hashable],
                length_arrays: List[np.ndarray]) -> None:
        """Route one chunk to its shards, replay them, advance watermarks."""
        start = time.perf_counter()
        per_shard: Dict[int, Dict[Hashable, np.ndarray]] = {}
        packets = 0
        volume = 0
        for key, lens in zip(keys, length_arrays):
            shard = self._shard(key)
            flows = per_shard.setdefault(shard, {})
            previous = flows.get(key)
            flows[key] = (lens if previous is None
                          else np.concatenate([previous, lens]))
            n = int(lens.size)
            total = int(round(float(lens.sum())))
            packets += n
            volume += total
            seen = self._keys[shard]
            if key not in seen:
                seen[key] = None
            truths = self._truths[shard]
            amount = n if self.mode == "size" else total
            truths[key] = truths.get(key, 0) + amount

        tasks = []
        for shard in sorted(per_shard):
            _faults.fire("shard.run", unit=shard)
            seed = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=self._root_key + (self.epoch_index, shard,
                                            self._chunk_in_epoch))
            tasks.append(_ShardChunkTask(
                shard=shard, index=shard,
                scheme_factory=self.scheme_factory,
                trace=self._shard_chunk_trace(shard, per_shard[shard]),
                mode=self.mode, rng=seed, state=self._state[shard],
                telemetry=self._enabled, engine=self.engine,
                store=self._store))

        if self.workers is None or self.workers == 1:
            outcomes = [_run_shard_chunk(task) for task in tasks]
        else:
            from repro.harness.parallel import run_tasks

            outcomes = run_tasks(_run_shard_chunk, tasks,
                                 max_workers=self.workers,
                                 session=self._epoch_tel)
        for shard, state, snap in outcomes:
            self._state[shard] = state
            self._epoch_tel.merge(snap)

        self._epoch_tel.count("stream.chunks")
        self._epoch_tel.count("stream.packets", packets)
        self._epoch_tel.count("stream.bytes", volume)
        self._epoch_tel.count("stream.shard_runs", len(tasks))
        self.packets_consumed += packets
        self.volume_consumed += volume
        self._epoch_packet_count += packets
        self._epoch_volume_count += volume
        self._chunk_in_epoch += 1
        self._chunks_since_checkpoint += 1

        if ((self.epoch_packets is not None
             and self._epoch_packet_count >= self.epoch_packets)
                or (self.epoch_bytes is not None
                    and self._epoch_volume_count >= self.epoch_bytes)):
            self.rotate()
        if (self.checkpoint_path is not None
                and self._chunks_since_checkpoint >= self.checkpoint_every):
            self.checkpoint()
        self.elapsed_seconds += time.perf_counter() - start

    # -- epochs --------------------------------------------------------------

    def rotate(self) -> Optional[EpochSnapshot]:
        """Close the open epoch: export every shard, then reset them.

        The paper's export-and-reset — each epoch starts from zeroed
        counters.  Returns the :class:`EpochSnapshot`, or ``None`` when
        the epoch consumed nothing.
        """
        if self._epoch_packet_count == 0:
            return None
        shard_estimates: List[Dict[Hashable, float]] = []
        shard_bits: List[int] = []
        for shard in range(self.shards):
            state = self._state[shard]
            if state is None or not state.index:
                shard_estimates.append({})
                shard_bits.append(0)
                continue
            estimates, bits = _readout(self._spec, state)
            shard_estimates.append(estimates)
            shard_bits.append(bits)
        truths: Dict[Hashable, int] = {}
        for shard_truths in self._truths:
            truths.update(shard_truths)
        self._epoch_tel.count("stream.epochs")
        snap_tel = self._epoch_tel.snapshot() if self._enabled else None
        snapshot = EpochSnapshot(
            index=self.epoch_index, scheme_name=self.scheme_name,
            mode=self.mode, packets=self._epoch_packet_count,
            volume=self._epoch_volume_count, shards=self.shards,
            shard_estimates=tuple(shard_estimates),
            shard_counter_bits=tuple(shard_bits),
            truths=truths, telemetry=snap_tel, store=self.store)
        self.snapshots.append(snapshot)
        if self._enabled:
            self._session.merge(snap_tel)
            self._total_tel.merge(snap_tel)
            self._epoch_tel = obs.Telemetry()
        self._state = [None] * self.shards
        self._keys = [dict() for _ in range(self.shards)]
        self._truths = [dict() for _ in range(self.shards)]
        self.epoch_index += 1
        self._chunk_in_epoch = 0
        self._epoch_packet_count = 0
        self._epoch_volume_count = 0
        return snapshot

    def finish(self) -> StreamResult:
        """Close the session: rotate any open epoch, return the result.

        Also writes a final checkpoint when checkpointing is on, so
        restoring a finished stream resumes into a no-op.
        """
        if self._epoch_packet_count:
            self.rotate()
        if self.checkpoint_path is not None:
            self.checkpoint()
        if self._enabled:
            leftover = self._epoch_tel.snapshot()
            self._session.merge(leftover)
            self._total_tel.merge(leftover)
            self._epoch_tel = obs.Telemetry()
        return StreamResult(
            scheme_name=self.scheme_name, trace_name=self.trace_name,
            mode=self.mode, shards=self.shards,
            snapshots=tuple(self.snapshots),
            packets=self.packets_consumed, volume=self.volume_consumed,
            elapsed_seconds=self.elapsed_seconds,
            telemetry=self._total_tel.snapshot() if self._enabled else None)

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self) -> str:
        """Atomically persist the session; returns the checkpoint path.

        The write is temp-file + ``os.replace``, with the
        ``checkpoint.write`` fault seam between serialisation and
        publication — an injected failure there (or a real crash) leaves
        the previous checkpoint intact.
        """
        if self.checkpoint_path is None:
            raise ParameterError(
                "checkpoint() needs a session built with checkpoint_path=")
        payload = {
            "magic": _CHECKPOINT_MAGIC,
            "version": _CHECKPOINT_VERSION,
            "scheme_factory": self.scheme_factory,
            "config": {
                "shards": self.shards,
                "epoch_packets": self.epoch_packets,
                "epoch_bytes": self.epoch_bytes,
                "chunk_packets": self.chunk_packets,
                "checkpoint_every": self.checkpoint_every,
                "name": self.name,
                "engine": self.engine,
                "store": self.store,
            },
            "entropy": self._root.entropy,
            "spawn_key": self._root_key,
            "trace_name": self.trace_name,
            "epoch_index": self.epoch_index,
            "chunk_in_epoch": self._chunk_in_epoch,
            "packets_consumed": self.packets_consumed,
            "volume_consumed": self.volume_consumed,
            "epoch_packet_count": self._epoch_packet_count,
            "epoch_volume_count": self._epoch_volume_count,
            "elapsed_seconds": self.elapsed_seconds,
            "keys": [list(keys) for keys in self._keys],
            "state": list(self._state),
            "truths": [dict(truths) for truths in self._truths],
            "snapshots": list(self.snapshots),
        }
        try:
            data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ParameterError(
                f"stream checkpoint state must pickle (use "
                f"repro.scheme_factory for the scheme): {exc}") from None
        tmp = f"{self.checkpoint_path}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        try:
            _faults.fire("checkpoint.write")
        except BaseException:
            # Publication never happened: drop the temp file so the
            # previous checkpoint stays the visible one.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, self.checkpoint_path)
        self._chunks_since_checkpoint = 0
        self._epoch_tel.count("stream.checkpoints")
        self._epoch_tel.count("stream.checkpoint_bytes", len(data))
        return self.checkpoint_path

    @classmethod
    def restore(cls, path: str, *, workers: Optional[int] = None,
                telemetry: Optional[obs.Telemetry] = None) -> "StreamSession":
        """Rebuild a session from a checkpoint written by :meth:`checkpoint`.

        The restored session continues the original chunk schedule (its
        per-chunk seeds are pure functions of the checkpointed root), so
        feeding it the same source yields estimates bit-identical to the
        uninterrupted run.  ``workers`` / ``telemetry`` are
        execution-environment choices, not measurement state, so they
        are chosen fresh here.
        """
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if (not isinstance(payload, dict)
                or payload.get("magic") != _CHECKPOINT_MAGIC):
            raise ParameterError(f"{path!r} is not a stream checkpoint")
        if payload.get("version") != _CHECKPOINT_VERSION:
            raise ParameterError(
                f"checkpoint version {payload.get('version')!r} is not "
                f"supported (expected {_CHECKPOINT_VERSION})")
        config = payload["config"]
        session = cls(
            payload["scheme_factory"],
            shards=config["shards"],
            epoch_packets=config["epoch_packets"],
            epoch_bytes=config["epoch_bytes"],
            chunk_packets=config["chunk_packets"],
            rng=np.random.SeedSequence(
                entropy=payload["entropy"],
                spawn_key=tuple(payload["spawn_key"])),
            workers=workers,
            engine=config.get("engine", "vector"),
            store=config.get("store", "dense"),
            telemetry=telemetry,
            checkpoint_path=path,
            checkpoint_every=config["checkpoint_every"],
            name=config["name"],
        )
        session.trace_name = payload["trace_name"]
        session.epoch_index = payload["epoch_index"]
        session._chunk_in_epoch = payload["chunk_in_epoch"]
        session.packets_consumed = payload["packets_consumed"]
        session.volume_consumed = payload["volume_consumed"]
        session._epoch_packet_count = payload["epoch_packet_count"]
        session._epoch_volume_count = payload["epoch_volume_count"]
        session.elapsed_seconds = payload["elapsed_seconds"]
        session._keys = [dict.fromkeys(keys) for keys in payload["keys"]]
        session._state = list(payload["state"])
        session._truths = [dict(truths) for truths in payload["truths"]]
        session.snapshots = list(payload["snapshots"])
        session._resume_skip = session.packets_consumed
        session._epoch_tel.count("stream.resumes")
        return session
