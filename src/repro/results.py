"""The one result contract every measurement entrypoint honours.

``replay()`` returns a :class:`~repro.harness.runner.RunResult`,
``run_kernel()`` a ``BatchReplayResult`` (or ``ReplicaReplayResult``
with a replica axis), and ``stream()`` an ``EpochSnapshot`` per epoch
plus a ``StreamResult``.  Report, plotting and export code used to
special-case each shape; they now all satisfy
:class:`MeasurementResult`:

``estimates_dict()``
    Per-flow estimates as a plain ``{flow: float}`` mapping (replica 0
    for replicated results, merged across epochs for streams).

``telemetry``
    The attached telemetry snapshot, or ``None`` when recording was
    off.

``to_json()``
    A JSON-serialisable summary (flow keys stringified via
    :func:`estimates_json`) for files, pipes and dashboards.

The protocol is ``runtime_checkable``, so consumers can assert
``isinstance(result, MeasurementResult)`` instead of enumerating
concrete classes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Protocol, runtime_checkable

__all__ = ["MeasurementResult", "estimates_json"]


@runtime_checkable
class MeasurementResult(Protocol):
    """Structural contract shared by every measurement result type."""

    @property
    def telemetry(self):  # snapshot dict or None
        ...

    def estimates_dict(self) -> Dict[Hashable, float]:
        """Per-flow estimates as a plain mapping."""
        ...

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable summary of the result."""
        ...


def estimates_json(estimates: Dict[Hashable, float]) -> Dict[str, float]:
    """Stringify flow keys so an estimates mapping survives ``json.dumps``."""
    return {str(key): float(value) for key, value in estimates.items()}
