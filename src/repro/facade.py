"""The unified replay entrypoint: one call, every engine, one rng story.

Historically three APIs replayed a trace: ``harness.runner.replay`` (the
scalar loops), ``core.batchreplay.replay_kernel`` (the columnar driver)
and ``replay_batch`` (its DISCO-only ancestor) — each with its own
seeding convention.  :func:`repro.replay` is the single entrypoint; the
legacy wrappers have been removed (see ``docs/api.md`` for the one-line
migrations).

This module also owns the *shared eager validation* for every
measurement entrypoint: :func:`_validate` holds the ``ParameterError``
checks that :func:`replay`, :func:`stream`,
:class:`~repro.streaming.StreamSession` and the :mod:`repro.serve`
daemon all apply, so a bad ``shards=`` or an incompatible
``store``/``engine`` pair is rejected with the identical message no
matter which door the configuration came through.

Seeding
-------
One ``rng`` argument seeds *everything* a replay randomises, via
:func:`seed_streams`: the arrival shuffle (scalar engines) and the NumPy
update stream (vector engine) are both derived from it, so the same seed
gives the same estimates on every engine *for that engine* — the fix for
the old split where ``replay(rng=...)`` seeded only the shuffle and the
vector engine silently used the scheme's own generator.  ``rng=None``
preserves the historical defaults (unseeded shuffle; vector stream from
the scheme's generator).

Telemetry
---------
``telemetry=`` accepts a :class:`repro.obs.Telemetry` session; ``None``
uses the ambient global registry (disabled by default, so the plain call
records nothing and pays nothing).  When recording, the per-call event
snapshot is attached to the returned result's ``.telemetry`` and merged
into the session.  See ``docs/telemetry.md`` for the event catalogue.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

import numpy as np

from repro import obs
from repro.errors import ParameterError

__all__ = ["replay", "stream", "seed_streams", "ReplayStreams",
           "replica_chunks", "REPLICA_CHUNK"]

AnyRng = Union[None, int, random.Random, np.random.Generator,
               np.random.SeedSequence]

#: Valid arrival orders — validated eagerly by :func:`replay` so a typo
#: fails before any packets are consumed, not deep inside an iterator.
_ORDERS = ("shuffled", "sequential", "asis", "roundrobin")

#: Columnar backends a stream (and the serve daemon) may run chunks on.
_STREAM_ENGINES = ("vector", "native")

_UNSET = object()


def _validate(
    *,
    order=_UNSET,
    replicas=_UNSET,
    shards=_UNSET,
    chunk_packets=_UNSET,
    epoch_packets=_UNSET,
    epoch_bytes=_UNSET,
    workers=_UNSET,
    checkpoint_every=_UNSET,
    stream_engine=_UNSET,
    store_engine=_UNSET,
    resume=_UNSET,
) -> None:
    """The one home of the eager ``ParameterError`` checks.

    Each keyword is only checked when passed, so callers name exactly the
    parameters they accept: :func:`replay` checks ``order``/``replicas``
    and the ``store_engine`` pairing, :func:`stream` adds ``resume``,
    :class:`~repro.streaming.StreamSession` the shard/watermark bounds
    and ``stream_engine``, and ``repro.serve`` reuses the whole set.
    Having one implementation keeps the error messages identical across
    entrypoints (asserted in ``tests/test_stream.py``).

    ``store_engine`` is a ``(store, engine, resolved)`` triple — the
    requested compact store (canonical name or ``None``), the caller's
    ``engine=`` argument, and what it resolved to.  ``resume`` is a
    ``(resume, checkpoint_path)`` pair.
    """
    if order is not _UNSET and order not in _ORDERS:
        raise ParameterError(
            f"order must be one of {', '.join(_ORDERS)}, got {order!r}")
    if replicas is not _UNSET and replicas < 1:
        raise ParameterError(f"replicas must be >= 1, got {replicas!r}")
    if shards is not _UNSET and shards < 1:
        raise ParameterError(f"shards must be >= 1, got {shards!r}")
    if chunk_packets is not _UNSET and chunk_packets < 1:
        raise ParameterError(
            f"chunk_packets must be >= 1, got {chunk_packets!r}")
    if (epoch_packets is not _UNSET and epoch_packets is not None
            and epoch_packets < 1):
        raise ParameterError(
            f"epoch_packets must be >= 1 or None, got {epoch_packets!r}")
    if (epoch_bytes is not _UNSET and epoch_bytes is not None
            and epoch_bytes < 1):
        raise ParameterError(
            f"epoch_bytes must be >= 1 or None, got {epoch_bytes!r}")
    if workers is not _UNSET and workers is not None and workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers!r}")
    if checkpoint_every is not _UNSET and checkpoint_every < 1:
        raise ParameterError(
            f"checkpoint_every must be >= 1, got {checkpoint_every!r}")
    if stream_engine is not _UNSET and stream_engine not in _STREAM_ENGINES:
        raise ParameterError(
            f"stream engine must be 'vector' or 'native', "
            f"got {stream_engine!r}")
    if store_engine is not _UNSET:
        store, engine, resolved = store_engine
        if store is not None and resolved not in ("vector", "native"):
            raise ParameterError(
                f"store={store!r} needs a columnar engine; engine={engine!r} "
                f"resolved to {resolved!r} — pass engine='vector' or 'native'"
            )
    if resume is not _UNSET:
        wants_resume, checkpoint_path = resume
        if wants_resume and checkpoint_path is None:
            raise ParameterError("resume=True needs checkpoint_path=")

#: Replicas advanced per multi-replica pass.  This is the *seeding* unit
#: of the replica axis: every ``replicas=R`` replay — serial
#: :func:`~repro.harness.runner.replay_replicas` and pooled
#: :func:`~repro.harness.parallel.replay_parallel` alike — splits R into
#: chunks of this size and derives one child stream per chunk through
#: :func:`replica_chunks`, so the two paths consume identical streams
#: and agree bit-for-bit for any R and any worker count.
REPLICA_CHUNK = 8


class ReplayStreams:
    """The two random streams a replay consumes, derived from one seed.

    * :attr:`shuffle` — the value handed to
      :meth:`~repro.traces.trace.Trace.packet_pairs` for the arrival
      shuffle.  Integers and ``random.Random`` instances pass through
      untouched, keeping shuffled replays bit-compatible with every
      historical seed.
    * :meth:`update` — the ``numpy.random.Generator`` driving vectorised
      update decisions, built through ``SeedSequence`` (an integer seed
      ``s`` yields ``default_rng(SeedSequence(s))``, which is exactly
      ``default_rng(s)``; a ``random.Random`` is consumed for one 128-bit
      seed).  Derived lazily, so scalar replays never disturb a caller's
      generator state.

    ``replay_parallel`` spawns per-chunk child seeds from the same
    ``SeedSequence`` root, which is why pooled and serial replica runs
    agree bit-for-bit.
    """

    __slots__ = ("raw",)

    def __init__(self, raw: AnyRng) -> None:
        self.raw = raw

    @property
    def shuffle(self) -> Union[None, int, random.Random]:
        """Seed for the arrival-order shuffle (scalar engines)."""
        raw = self.raw
        if raw is None or isinstance(raw, (int, random.Random)):
            return raw
        if isinstance(raw, np.random.SeedSequence):
            # generate_state is a pure function of the sequence's entropy:
            # no state is consumed, repeated calls agree.
            return int(raw.generate_state(1, np.uint64)[0])
        if isinstance(raw, np.random.Generator):
            return int(raw.integers(1 << 63))
        raise ParameterError(
            f"unsupported rng type {type(raw).__name__}; pass None, an "
            f"int, random.Random, numpy Generator or SeedSequence"
        )

    def update(self, fallback: AnyRng = None) -> np.random.Generator:
        """The NumPy generator for vectorised updates.

        ``fallback`` is used when this stream was built from ``rng=None``
        — the vector engine passes the scheme's own generator, preserving
        the historical "seeded scheme gives a deterministic vector
        replay" contract.
        """
        from repro.core.batchreplay import as_generator

        raw = self.raw if self.raw is not None else fallback
        return as_generator(raw)

    def root(self) -> np.random.SeedSequence:
        """This stream's entropy as a ``SeedSequence`` root.

        Integers and ``SeedSequence`` map losslessly; a ``random.Random``
        or NumPy ``Generator`` is *consumed* for one 128-bit seed (so two
        identically seeded generators derive the same root); ``None``
        draws fresh OS entropy and is therefore non-deterministic.
        """
        raw = self.raw
        if isinstance(raw, np.random.SeedSequence):
            return raw
        if isinstance(raw, random.Random):
            return np.random.SeedSequence(raw.getrandbits(128))
        if isinstance(raw, np.random.Generator):
            words = raw.integers(0, 1 << 63, size=2)
            return np.random.SeedSequence(
                (int(words[0]) << 63) | int(words[1]))
        if raw is None or isinstance(raw, int):
            return np.random.SeedSequence(raw)
        raise ParameterError(
            f"unsupported rng type {type(raw).__name__}; pass None, an "
            f"int, random.Random, numpy Generator or SeedSequence"
        )

    def spawn(self, n: int) -> List["ReplayStreams"]:
        """``n`` independent child streams, derived deterministically.

        Children are built from :meth:`root` by extending its spawn key
        (``SeedSequence(entropy, spawn_key=root.spawn_key + (i,))``) —
        the same derivation ``SeedSequence.spawn`` uses, but as a pure
        function: repeated calls on equal roots yield equal children, no
        hidden spawn counter involved.  This is the primitive behind
        :func:`replica_chunks`, which is why pooled and serial replica
        replays agree bit-for-bit.
        """
        if n < 1:
            raise ParameterError(f"spawn count must be >= 1, got {n!r}")
        root = self.root()
        key = tuple(root.spawn_key)
        return [
            ReplayStreams(np.random.SeedSequence(entropy=root.entropy,
                                                 spawn_key=key + (i,)))
            for i in range(n)
        ]


def seed_streams(rng: AnyRng) -> ReplayStreams:
    """Derive every replay-owned random stream from one ``rng`` value.

    The single seeding helper behind :func:`replay`,
    :func:`~repro.harness.runner.replay_replicas` and
    :func:`~repro.harness.parallel.replay_parallel`: accepts ``None``, an
    integer seed, a ``random.Random``, a ``numpy.random.Generator`` or a
    ``numpy.random.SeedSequence`` and exposes the shuffle and update
    streams documented on :class:`ReplayStreams`.
    """
    if rng is not None and not isinstance(
            rng, (int, random.Random, np.random.Generator,
                  np.random.SeedSequence)):
        raise ParameterError(
            f"unsupported rng type {type(rng).__name__}; pass None, an "
            f"int, random.Random, numpy Generator or SeedSequence"
        )
    return ReplayStreams(rng)


def replica_chunks(replicas: int, rng: AnyRng,
                   chunk: Optional[int] = None) -> List[tuple]:
    """The replica axis's canonical chunking: ``[(size, child_seed), ...]``.

    Splits ``replicas`` into chunks of ``chunk`` (default
    :data:`REPLICA_CHUNK`) and derives one independent
    ``numpy.random.SeedSequence`` per chunk via
    :meth:`ReplayStreams.spawn`.  Both
    :func:`~repro.harness.runner.replay_replicas` and
    :func:`~repro.harness.parallel.replay_parallel` seed their
    multi-replica passes through this one schedule, which is what makes
    an R-replica replay bit-identical no matter how the chunks are
    distributed over workers — including when R is not divisible by the
    chunk size.  Accepts every :func:`seed_streams` rng convention;
    ``rng=None`` derives from fresh OS entropy (non-deterministic by
    design — there is no seed to reproduce).
    """
    if replicas < 1:
        raise ParameterError(f"replicas must be >= 1, got {replicas!r}")
    if chunk is None:
        chunk = REPLICA_CHUNK
    if chunk < 1:
        raise ParameterError(f"chunk must be >= 1, got {chunk!r}")
    n_chunks = -(-replicas // chunk)
    children = seed_streams(rng).spawn(n_chunks)
    plan = []
    remaining = replicas
    for child in children:
        size = min(chunk, remaining)
        remaining -= size
        plan.append((size, child.raw))
    return plan


#: Integer event counters a scheme maintains during a replay; the facade
#: counts their deltas as ``scheme.<attr>`` telemetry events, uniformly
#: across engines (kernels write the same attributes back).
_SCHEME_EVENT_ATTRS = (
    "saturation_events",
    "global_renormalizations",
    "counter_renormalizations",
    "flushes",
    "overflow_events",
)


def _scheme_event_state(scheme) -> dict:
    state = {}
    for attr in _SCHEME_EVENT_ATTRS:
        value = getattr(scheme, attr, None)
        if isinstance(value, int):
            state[attr] = value
    return state


def _count_scheme_events(tel, scheme, before: dict) -> None:
    for attr, start in before.items():
        delta = getattr(scheme, attr, start) - start
        if delta:
            tel.count(f"scheme.{attr}", delta)


def replay(
    scheme,
    trace,
    *,
    order: str = "shuffled",
    rng: AnyRng = None,
    engine: str = "auto",
    replicas: int = 1,
    store: Optional[str] = None,
    telemetry: Optional["obs.Telemetry"] = None,
):
    """Replay ``trace`` through ``scheme`` and score the estimates.

    The single replay entrypoint: selects an engine
    (``auto``/``python``/``fast``/``vector``/``native`` — see
    :mod:`repro.harness.runner` for the contract), derives every random
    stream from ``rng`` via :func:`seed_streams`, and returns one
    :class:`~repro.harness.runner.RunResult` — or a list of ``replicas``
    of them when ``replicas > 1``, in which case the columnar replica
    axis advances all copies in a single vector pass (the scheme must
    expose a kernel; ``order`` is ignored, the vector path is
    order-free).  For array-level replica output
    (:class:`~repro.core.batchreplay.ReplicaReplayResult`) use
    :func:`repro.core.batchreplay.run_kernel` directly.

    ``store`` selects the counter-store backend the final per-flow
    state is held in (:mod:`repro.core.stores`): ``None``/``"dense"``
    keeps the live arrays; ``"pools"``/``"morris"`` round-trip the
    state through the compact representation before read-out, so the
    scored estimates reflect compactly stored counters.  Compact
    backends need a columnar engine (``"vector"``/``"native"``, or an
    ``"auto"`` resolution landing on one).

    ``telemetry`` scopes event recording to a
    :class:`repro.obs.Telemetry` session (``None`` = the ambient global
    registry, disabled by default).
    """
    from repro.core.stores import resolve_store
    from repro.harness.runner import (
        _replay_scalar,
        _replay_vector,
        replay_replicas,
        resolve_engine,
    )

    _validate(order=order, replicas=replicas)
    compact_store = resolve_store(store)  # eager: bad names fail here
    if replicas > 1:
        if engine not in ("auto", "vector"):
            raise ParameterError(
                f"replica replays run on the vector path; engine must be "
                f"'auto' or 'vector', got {engine!r}"
            )
        return replay_replicas(scheme, trace, replicas, rng=rng,
                               telemetry=telemetry, store=compact_store)

    session = obs.resolve(telemetry)
    tel = obs.Telemetry() if session.enabled else obs.NULL_TELEMETRY
    streams = seed_streams(rng)
    resolved = resolve_engine(engine, scheme)
    _validate(store_engine=(compact_store, engine, resolved))
    tel.count("replay.calls")
    tel.count(f"replay.engine.{resolved}")
    before = _scheme_event_state(scheme) if tel.enabled else {}
    if resolved in ("vector", "native"):
        result = _replay_vector(scheme, trace,
                                rng=None if rng is None else streams.update(),
                                telemetry=tel, engine=resolved,
                                store=compact_store)
    else:
        result = _replay_scalar(scheme, trace, order=order,
                                rng=streams.shuffle, engine=resolved,
                                telemetry=tel)
    if tel.enabled:
        _count_scheme_events(tel, scheme, before)
        snap = tel.snapshot()
        result.telemetry = snap
        session.merge(snap)
    return result


def stream(
    scheme_factory,
    trace,
    *,
    shards: int = 1,
    epoch_packets: Optional[int] = None,
    epoch_bytes: Optional[int] = None,
    chunk_packets: Optional[int] = None,
    rng: AnyRng = None,
    workers: Optional[int] = None,
    engine: str = "vector",
    store: Optional[str] = None,
    telemetry: Optional["obs.Telemetry"] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    faults=None,
):
    """Measure ``trace`` as an epoch-rotating, hash-sharded stream.

    The one-call wrapper around :class:`repro.streaming.StreamSession`:
    builds the session, consumes the whole trace (chunked — the trace
    streams through zero-copy views, it is never replayed in one pass),
    and returns the :class:`~repro.streaming.StreamResult` with one
    :class:`~repro.streaming.EpochSnapshot` per rotation.  For
    incremental feeds (live pairs, multiple traces, manual rotation)
    drive a :class:`~repro.streaming.StreamSession` directly.

    ``scheme_factory`` is a zero-argument scheme builder — prefer
    :func:`repro.scheme_factory`, which pickles into pool workers and
    checkpoints.  ``rng`` follows the :func:`seed_streams` convention;
    for a fixed configuration the result is same-seed deterministic
    across ``workers`` settings, and for the exact scheme the summed
    epoch estimates equal a one-shot :func:`replay` bit-for-bit.
    ``engine`` picks the per-chunk columnar backend (``"vector"`` or
    ``"native"`` — see :mod:`repro.core.native`); carried kernel state
    round-trips through native chunks unchanged.  ``store`` picks the
    counter-store backend holding the carried per-flow state between
    chunks (``"dense"`` default, ``"pools"`` lossless compact,
    ``"morris"`` lossy compact — :mod:`repro.core.stores`); the choice
    persists into checkpoints and is restored on ``resume``.

    ``resume=True`` (requires ``checkpoint_path=``) restores the
    session from an existing checkpoint and skips the packets it
    already consumed, reproducing the uninterrupted run's estimates
    exactly; when no checkpoint file exists yet the stream simply
    starts fresh.  ``faults=`` arms a :mod:`repro.faults` plan (plan
    string or :class:`~repro.faults.FaultPlan`) for the duration of the
    call — the ``shard.run`` and ``checkpoint.write`` seams plus the
    pool seams when ``workers >= 2``.
    """
    import os as _os

    from repro import faults as _faults
    from repro.streaming import DEFAULT_CHUNK_PACKETS, StreamSession

    _validate(resume=(resume, checkpoint_path))
    if chunk_packets is None:
        chunk_packets = DEFAULT_CHUNK_PACKETS
    plan = _faults.resolve_plan(faults)
    session_tel = obs.resolve(telemetry)
    if plan:
        _faults.arm(plan, session_tel)
    try:
        if (resume and checkpoint_path is not None
                and _os.path.exists(checkpoint_path)):
            session = StreamSession.restore(
                checkpoint_path, workers=workers, telemetry=telemetry)
        else:
            session = StreamSession(
                scheme_factory,
                shards=shards,
                epoch_packets=epoch_packets,
                epoch_bytes=epoch_bytes,
                chunk_packets=chunk_packets,
                rng=rng,
                workers=workers,
                engine=engine,
                store=store,
                telemetry=telemetry,
                checkpoint_path=checkpoint_path,
            )
        session.consume(trace)
        return session.finish()
    finally:
        if plan:
            _faults.disarm()
