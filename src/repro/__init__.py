"""DISCO: memory-efficient and accurate flow statistics — full reproduction.

Reproduction of Hu et al., "DISCO: Memory Efficient and Accurate Flow
Statistics for Network Measurement" (ICDCS 2010).

Public API tour
---------------
The paper's contribution::

    from repro import DiscoSketch
    sketch = DiscoSketch(b=1.02, mode="volume", rng=42)
    sketch.observe(flow="10.0.0.1->10.0.0.2", length=1420)
    sketch.estimate("10.0.0.1->10.0.0.2")

Baselines (:mod:`repro.counters`), workloads (:mod:`repro.traces`),
accuracy metrics (:mod:`repro.metrics`), the theory of Section IV
(:mod:`repro.core.analysis`), the IXP2850 implementation model
(:mod:`repro.ixp`) and the per-figure experiment harness
(:mod:`repro.harness`) are one import away.
"""

from repro.core import (
    ConfidenceInterval,
    CountingFunction,
    DiscoCounter,
    DiscoSketch,
    GeometricCountingFunction,
    HybridCountingFunction,
    LinearCountingFunction,
    UpdateDecision,
    apply_update,
    b_for_cov_bound,
    choose_b,
    coefficient_of_variation,
    compute_update,
    confidence_interval,
    counter_bits,
    cov_bound,
    expected_counter_upper_bound,
    geometric,
    load_sketch,
    merge_counters,
    merge_sketches,
    merged_estimate,
    save_sketch,
)
from repro.errors import (
    CounterOverflowError,
    DecodingError,
    ParameterError,
    ReproError,
    TraceFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DiscoCounter",
    "DiscoSketch",
    "CountingFunction",
    "GeometricCountingFunction",
    "LinearCountingFunction",
    "HybridCountingFunction",
    "geometric",
    "ConfidenceInterval",
    "confidence_interval",
    "save_sketch",
    "load_sketch",
    "merge_counters",
    "merge_sketches",
    "merged_estimate",
    "UpdateDecision",
    "compute_update",
    "apply_update",
    "counter_bits",
    "coefficient_of_variation",
    "cov_bound",
    "b_for_cov_bound",
    "choose_b",
    "expected_counter_upper_bound",
    "ReproError",
    "ParameterError",
    "CounterOverflowError",
    "DecodingError",
    "TraceFormatError",
]
