"""DISCO: memory-efficient and accurate flow statistics — full reproduction.

Reproduction of Hu et al., "DISCO: Memory Efficient and Accurate Flow
Statistics for Network Measurement" (ICDCS 2010).

Public API tour
---------------
The paper's contribution::

    from repro import DiscoSketch
    sketch = DiscoSketch(b=1.02, mode="volume", rng=42)
    sketch.observe(flow="10.0.0.1->10.0.0.2", length=1420)
    sketch.estimate("10.0.0.1->10.0.0.2")

Replaying a trace — :func:`repro.replay` is the single entrypoint for
every engine (the scalar loops and the columnar vector path), with one
``rng`` argument seeding every random stream the replay consumes::

    from repro import replay
    result = replay(sketch, trace, rng=7)              # engine="auto"
    results = replay(sketch, trace, rng=7, replicas=32)  # vector replicas

Bulk runs fan out through :class:`~repro.harness.parallel.ReplayJob` +
:func:`~repro.harness.parallel.replay_parallel`;
:func:`~repro.harness.runner.replay_replicas` and
:func:`~repro.harness.montecarlo.measure_trace_estimator` wrap the
multi-replica axis for Monte-Carlo measurement.

Streaming — :func:`repro.stream` measures a trace the way the paper's
linecards do: incrementally, hash-sharded, with counters exported and
reset once per epoch (:mod:`repro.streaming` holds the session type)::

    from repro import scheme_factory, stream
    result = stream(scheme_factory("disco", b=1.02, seed=42), trace,
                    shards=4, epoch_packets=50_000, rng=7)
    result.snapshots      # one EpochSnapshot per rotation
    result.estimates_dict()  # flows summed across epochs

Schemes are built by name through the public registry
(:func:`repro.make_scheme` / :func:`repro.scheme_factory` — the frozen
factory pickles into pool workers and stream checkpoints), and every
terminal result type satisfies the :class:`repro.results
.MeasurementResult` protocol (``estimates_dict()`` / ``telemetry`` /
``to_json()``).

Observability — every replay layer is threaded through
:class:`repro.obs.Telemetry` (named counters, timers, spans), disabled
by default and free when off::

    from repro import Telemetry, replay
    tel = Telemetry()
    replay(sketch, trace, rng=7, telemetry=tel)
    tel.snapshot()   # JSON-able event counts; see docs/telemetry.md

Baselines (:mod:`repro.counters`), workloads (:mod:`repro.traces`),
accuracy metrics (:mod:`repro.metrics`), the theory of Section IV
(:mod:`repro.core.analysis`), the IXP2850 implementation model
(:mod:`repro.ixp`) and the per-figure experiment harness
(:mod:`repro.harness`) are one import away.
"""

from repro import obs
from repro.facade import ReplayStreams, replay, seed_streams, stream
from repro.faults import FaultPlan, FaultSpec
from repro.obs import Telemetry
from repro.results import MeasurementResult
from repro.schemes import (
    SchemeFactory,
    SchemeSpec,
    make_scheme,
    scheme_factory,
    scheme_names,
)
from repro.streaming import EpochSnapshot, StreamResult, StreamSession
from repro.traces.registry import (
    TraceFactory,
    TraceSpec,
    make_trace,
    trace_factory,
    trace_names,
    trace_spec,
)
from repro.core import (
    ConfidenceInterval,
    CountingFunction,
    DiscoCounter,
    DiscoSketch,
    GeometricCountingFunction,
    HybridCountingFunction,
    LinearCountingFunction,
    UpdateDecision,
    apply_update,
    b_for_cov_bound,
    choose_b,
    coefficient_of_variation,
    compute_update,
    confidence_interval,
    counter_bits,
    cov_bound,
    expected_counter_upper_bound,
    geometric,
    kernel_scheme_names,
    kernel_spec,
    load_sketch,
    merge_counters,
    merge_sketches,
    merged_estimate,
    save_sketch,
)
from repro.errors import (
    CounterOverflowError,
    DecodingError,
    ParameterError,
    ReproError,
    TraceFormatError,
)
from repro.harness.montecarlo import measure_trace_estimator
from repro.harness.parallel import ReplayJob, replay_parallel
from repro.harness.runner import RunResult, replay_replicas

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "replay",
    "stream",
    "seed_streams",
    "ReplayStreams",
    "RunResult",
    "MeasurementResult",
    "StreamSession",
    "StreamResult",
    "EpochSnapshot",
    "make_scheme",
    "scheme_factory",
    "scheme_names",
    "SchemeFactory",
    "SchemeSpec",
    "make_trace",
    "trace_factory",
    "trace_names",
    "trace_spec",
    "TraceFactory",
    "TraceSpec",
    "replay_replicas",
    "replay_parallel",
    "ReplayJob",
    "measure_trace_estimator",
    "Telemetry",
    "FaultPlan",
    "FaultSpec",
    "DiscoCounter",
    "DiscoSketch",
    "CountingFunction",
    "GeometricCountingFunction",
    "LinearCountingFunction",
    "HybridCountingFunction",
    "geometric",
    "ConfidenceInterval",
    "confidence_interval",
    "save_sketch",
    "load_sketch",
    "merge_counters",
    "merge_sketches",
    "merged_estimate",
    "UpdateDecision",
    "compute_update",
    "apply_update",
    "counter_bits",
    "coefficient_of_variation",
    "cov_bound",
    "b_for_cov_bound",
    "choose_b",
    "expected_counter_upper_bound",
    "kernel_spec",
    "kernel_scheme_names",
    "ReproError",
    "ParameterError",
    "CounterOverflowError",
    "DecodingError",
    "TraceFormatError",
]
