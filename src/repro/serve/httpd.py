"""A minimal JSON-over-HTTP/1.1 listener on raw asyncio streams.

The daemon's query surface is deliberately tiny — five ``GET`` routes
and three ``POST`` verbs, every body JSON — so it runs on
``asyncio.start_server`` directly rather than pulling in an HTTP
framework (the repo installs nothing).  The subset implemented:

* request line + headers parsed, ``Content-Length`` bodies read;
* every response is ``Connection: close`` (one exchange per
  connection), which sidesteps keep-alive state entirely;
* handler exceptions map to status codes:
  :class:`~repro.errors.ParameterError` → 400, unknown route → 404,
  anything else → 500 with the error text in the JSON body — a broken
  query must never take the measurement loop down with it.

The handler contract is synchronous on purpose: the daemon's whole
consistency story is that queries run *between* chunk ingests on one
event loop, so a handler observing the session always sees
chunk-boundary state.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.errors import ParameterError

__all__ = ["HttpServer", "Request"]

_MAX_REQUEST_BYTES = 1 << 20  # plenty for control verbs; queries have no body

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}


class Request:
    """One parsed HTTP exchange: method, path, query params, JSON body."""

    __slots__ = ("method", "path", "params", "body")

    def __init__(self, method: str, path: str, params: Dict[str, str],
                 body: Optional[dict]) -> None:
        self.method = method
        self.path = path
        self.params = params
        self.body = body

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.params.get(name, default)

    def int_param(self, name: str, default: int) -> int:
        raw = self.params.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ParameterError(
                f"query parameter {name}= must be an integer, got {raw!r}"
            ) from None


#: Handler signature: request in, ``(status, JSON-able payload)`` out.
Handler = Callable[[Request], Tuple[int, object]]


class HttpServer:
    """Serve a synchronous handler over asyncio; one response per connection."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0,
                 telemetry: Optional[obs.Telemetry] = None) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._tel = telemetry if telemetry is not None else obs.NULL_TELEMETRY
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- the wire ------------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._exchange(reader)
        except Exception as exc:  # parse failure, client went away, ...
            status, payload = 400, {"error": str(exc)}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _exchange(self, reader: asyncio.StreamReader
                        ) -> Tuple[int, object]:
        request_line = await reader.readline()
        if not request_line:
            return 400, {"error": "empty request"}
        try:
            method, target, _version = (
                request_line.decode("ascii").strip().split(" ", 2))
        except ValueError:
            return 400, {"error": f"malformed request line {request_line!r}"}
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_REQUEST_BYTES:
            return 400, {"error": f"request body too large ({length} bytes)"}
        body: Optional[dict] = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError:
                return 400, {"error": "request body is not valid JSON"}

        split = urlsplit(target)
        params = {name: values[-1]
                  for name, values in parse_qs(split.query).items()}
        request = Request(method.upper(), split.path, params, body)

        self._tel.count("serve.http.requests")
        start = asyncio.get_event_loop().time()
        try:
            status, payload = self.handler(request)
        except ParameterError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # keep the daemon alive; report the query
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            self._tel.timing("serve.request",
                             asyncio.get_event_loop().time() - start)
        if status >= 400:
            self._tel.count("serve.http.errors")
        return status, payload
