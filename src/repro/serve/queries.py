"""The daemon's read side: live queries over a running stream session.

A :class:`QueryEngine` answers every ``GET`` the daemon serves.  It
merges two sources:

* **Closed epochs** — the session's rotated
  :class:`~repro.streaming.EpochSnapshot` list, ingested lazily into an
  export-side :class:`~repro.export.collector.Collector` (per-flow
  interval series, totals, top-k).  The collector's scheme/store merge
  guard runs on every ingest, so a daemon can never silently mix
  incomparable epochs.
* **The open epoch** — the carried shard states, decoded through
  :meth:`StreamSession.live_estimates
  <repro.streaming.StreamSession.live_estimates>` /
  ``live_counters``.  Decoding is O(live flows), so both read-outs are
  cached per chunk boundary: between chunks, repeated queries pay one
  dict lookup.

Confidence intervals come from the raw *live counter* via
:func:`repro.core.confidence.confidence_interval` when the scheme
exposes a DISCO growth base ``b`` — the export-protocol property that
collectors can re-derive error bars instead of trusting point
estimates.  Schemes without ``b`` (exact, SAC, ...) answer with
``"confidence": null``.

Flow keys are stringified at the query boundary (the export-record
convention), so ``GET /flows/7`` finds integer flow ``7``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.core.confidence import confidence_interval
from repro.errors import ParameterError
from repro.export.collector import Collector

__all__ = ["QueryEngine"]


class QueryEngine:
    """Answers flow/topk/epoch queries against a live ``StreamSession``."""

    def __init__(self, session) -> None:
        self.session = session
        self.collector = Collector()
        self._ingested = 0
        # Chunk-boundary cache for the open-epoch decode; invalidated by
        # (packets_consumed, epoch_index) movement.
        self._live_key: Optional[Tuple[int, int]] = None
        self._live_estimates: Dict[str, float] = {}
        self._live_keys: Dict[str, Hashable] = {}
        # DISCO-family schemes expose their growth base on the counting
        # function (``DiscoSketch.function.b``); probed once at build.
        scheme = session.scheme_factory()
        b = getattr(scheme, "b", None)
        if b is None:
            b = getattr(getattr(scheme, "function", None), "b", None)
        self.b = float(b) if isinstance(b, (int, float)) else None

    # -- synchronisation -----------------------------------------------------

    def sync(self) -> None:
        """Ingest any newly rotated epochs into the collector."""
        snapshots = self.session.snapshots
        while self._ingested < len(snapshots):
            self.collector.ingest_snapshot(snapshots[self._ingested])
            self._ingested += 1

    def _live(self) -> Dict[str, float]:
        """Open-epoch estimates, string-keyed, cached per chunk boundary."""
        key = (self.session.packets_consumed, self.session.epoch_index)
        if key != self._live_key:
            raw = self.session.live_estimates()
            self._live_estimates = {str(k): float(v) for k, v in raw.items()}
            self._live_keys = {str(k): k for k in raw}
            self._live_key = key
        return self._live_estimates

    # -- queries -------------------------------------------------------------

    def flow(self, flow_id: str) -> Dict[str, object]:
        """Per-flow answer: epoch series, live estimate, total, confidence."""
        self.sync()
        live = self._live()
        series = self.collector.series(flow_id)
        live_estimate = live.get(flow_id)
        confidence = None
        if self.b is not None and flow_id in self._live_keys:
            counters = self.session.live_counters()
            counter = counters.get(self._live_keys[flow_id])
            if counter is not None:
                ci = confidence_interval(self.b, counter)
                confidence = {
                    "estimate": ci.estimate,
                    "low": ci.low,
                    "high": ci.high,
                    "level": ci.level,
                    "relative_stddev": ci.relative_stddev,
                }
        total = series.total + (live_estimate or 0.0)
        found = bool(series.estimates) or live_estimate is not None
        return {
            "type": "flow",
            "flow": flow_id,
            "found": found,
            "scheme": self.session.scheme_name,
            "mode": self.session.mode,
            "epochs": list(series.estimates),
            "epoch_total": series.total,
            "live_estimate": live_estimate,
            "total": total,
            "confidence": confidence,
        }

    def topk(self, n: int) -> Dict[str, object]:
        """Heavy hitters over closed epochs plus the open one, merged.

        ``n`` is validated eagerly — a bad count must be a
        :class:`ParameterError` (the daemon's 400) before any collector
        work happens, whoever the caller is.  Ties rank by
        ``(-estimate, flow_id)`` so repeated queries at the same chunk
        boundary return a stable order.
        """
        # bool is an int subclass; reject it explicitly so topk(True)
        # cannot masquerade as topk(1).
        if isinstance(n, bool) or not isinstance(n, int):
            raise ParameterError(f"n must be an integer, got {n!r}")
        if n < 1:
            raise ParameterError(f"n must be >= 1, got {n!r}")
        self.sync()
        totals: Dict[str, float] = {
            key: self.collector.flow_total(key)
            for key in self.collector.flows()
        }
        for key, estimate in self._live().items():
            totals[key] = totals.get(key, 0.0) + estimate
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "type": "topk",
            "n": int(n),
            "scheme": self.session.scheme_name,
            "mode": self.session.mode,
            "flows": [{"flow": key, "estimate": est}
                      for key, est in ranked[:n]],
        }

    def epochs(self) -> Dict[str, object]:
        """Every rotated epoch as its ``MeasurementResult.to_json()``."""
        self.sync()
        return {
            "type": "epochs",
            "count": len(self.session.snapshots),
            "epochs": [snap.to_json() for snap in self.session.snapshots],
        }
