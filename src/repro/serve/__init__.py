"""``repro.serve`` — the long-running measurement daemon.

The production deployment shape the paper's linecard model implies:
``python -m repro serve`` runs a :class:`~repro.serve.daemon.ServeDaemon`
that ingests packets from a pluggable :mod:`~repro.serve.feeds` feed
through a sharded :class:`~repro.streaming.StreamSession`, rotates and
checkpoints epochs, and answers live JSON-over-HTTP queries —
``GET /flows/{id}`` (estimate + confidence interval), ``GET /topk?n=``,
``GET /epochs``, ``GET /telemetry``, ``GET /healthz`` and
``POST /control/rotate|checkpoint|drain``.  See ``docs/serve.md``.

Programmatic use::

    from repro import scheme_factory
    from repro.serve import DaemonHandle, TraceFeed, build_daemon

    daemon = build_daemon(scheme_factory("disco", b=1.02), TraceFeed(trace),
                          epoch_packets=4096, checkpoint_path="m.ckpt")
    with DaemonHandle(daemon) as handle:
        print(handle.client.topk(5))
"""

from repro.serve.client import DaemonHandle, ServeClient
from repro.serve.daemon import ServeDaemon, build_daemon
from repro.serve.feeds import (
    Feed,
    GeneratorFeed,
    SocketFeed,
    TraceFeed,
    make_feed,
)
from repro.serve.queries import QueryEngine

__all__ = [
    "DaemonHandle",
    "Feed",
    "GeneratorFeed",
    "QueryEngine",
    "ServeClient",
    "ServeDaemon",
    "SocketFeed",
    "TraceFeed",
    "build_daemon",
    "make_feed",
]
