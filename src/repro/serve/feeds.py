"""Packet feeds for the serve daemon: where live chunks come from.

A *feed* is the daemon's ingestion source — an async iterator of
pre-batched chunks, each one a ``(keys, length_arrays)`` pair in exactly
the shape :meth:`repro.streaming.StreamSession.ingest_chunk` consumes.
Three sources cover the deployment shapes:

* :class:`TraceFeed` — tail a :class:`~repro.traces.compiled
  .CompiledTrace` through :meth:`~repro.traces.compiled.CompiledTrace
  .iter_chunks`.  Deterministic and *resumable*: ``start=`` skips an
  already-consumed prefix on the original chunk boundaries, which is
  what makes ``serve --resume`` bit-identical to an uninterrupted run.
* :class:`GeneratorFeed` — any iterable of ``(flow, length)`` pairs,
  batched internally (the live-capture shape).  Resumable by consuming
  and discarding ``start`` pairs, so a deterministic generator resumes
  deterministically.
* :class:`SocketFeed` — a line-delimited TCP listener (``"<flow>
  <length>\\n"`` per packet), for pushing packets at a running daemon.
  A socket is a live source: ``start`` is ignored and a resumed daemon
  simply continues from whatever arrives next.

Feeds are deliberately dumb: no sharding, no watermarks, no telemetry —
the :class:`~repro.serve.daemon.ServeDaemon` owns all of that.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.traces.compiled import CompiledTrace, compile_trace
from repro.traces.trace import Trace

__all__ = ["Feed", "TraceFeed", "GeneratorFeed", "SocketFeed", "make_feed"]

#: One feed batch: parallel flow-key / packet-length-array lists.
Batch = Tuple[List[Hashable], List[np.ndarray]]


class Feed:
    """Interface: an async stream of ingestion batches.

    ``batches(chunk_packets, start=)`` yields :data:`Batch` tuples of at
    most ``chunk_packets`` packets each; ``start`` asks the feed to skip
    a prefix it already delivered (resume).  ``name`` labels the feed in
    telemetry and ``/healthz``.
    """

    name = "feed"

    #: Whether ``start=`` replays the exact original batch schedule —
    #: the property ``serve --resume`` bit-identity rests on.
    deterministic_resume = False

    def batches(self, chunk_packets: int,
                start: int = 0) -> AsyncIterator[Batch]:
        raise NotImplementedError


class TraceFeed(Feed):
    """Chunk a compiled trace — the deterministic, resumable feed."""

    deterministic_resume = True

    def __init__(self, trace) -> None:
        if not isinstance(trace, (Trace, CompiledTrace)):
            raise ParameterError(
                f"TraceFeed needs a Trace or CompiledTrace, got "
                f"{type(trace).__name__}")
        self.trace = compile_trace(trace)
        self.name = f"trace:{self.trace.name}"

    async def batches(self, chunk_packets: int,
                      start: int = 0) -> AsyncIterator[Batch]:
        for chunk in self.trace.iter_chunks(chunk_packets, start=start):
            yield chunk.keys, chunk.lengths


class GeneratorFeed(Feed):
    """Batch an iterable of ``(flow, length)`` pairs into chunks.

    Mirrors :meth:`StreamSession.extend
    <repro.streaming.StreamSession.extend>`'s batching — per-flow
    length lists aggregated until ``chunk_packets`` packets accumulate —
    so a generator feed and a direct ``extend()`` of the same pairs
    produce identical chunk schedules.  Resume replays deterministically
    *iff* the underlying iterable does (a seeded generator yes, a live
    capture no), so ``deterministic_resume`` is an explicit flag.
    """

    def __init__(self, pairs: Iterable[Tuple[Hashable, float]], *,
                 name: str = "generator",
                 deterministic_resume: bool = False) -> None:
        self._pairs = pairs
        self.name = f"generator:{name}"
        self.deterministic_resume = deterministic_resume

    async def batches(self, chunk_packets: int,
                      start: int = 0) -> AsyncIterator[Batch]:
        batch_keys: List[Hashable] = []
        batch_map = {}
        count = 0
        skip = start
        for key, length in self._pairs:
            if skip > 0:
                skip -= 1
                continue
            lens = batch_map.get(key)
            if lens is None:
                batch_map[key] = lens = []
                batch_keys.append(key)
            lens.append(float(length))
            count += 1
            if count >= chunk_packets:
                yield (batch_keys,
                       [np.asarray(batch_map[k], dtype=np.float64)
                        for k in batch_keys])
                batch_keys, batch_map, count = [], {}, 0
        if count:
            yield (batch_keys,
                   [np.asarray(batch_map[k], dtype=np.float64)
                    for k in batch_keys])


class SocketFeed(Feed):
    """Line-delimited TCP ingestion: ``"<flow> <length>\\n"`` per packet.

    Binds an asyncio listener; every connected client's lines are parsed
    into ``(flow, length)`` pairs and batched into chunks.  A short
    flush timeout bounds how stale a partial batch may get when traffic
    pauses, so low-rate sources still reach the counters.  The feed ends
    when :meth:`close` is called (the daemon's drain path); malformed
    lines are counted and skipped, never fatal — a measurement daemon
    must not die because one sender glitched.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 flush_seconds: float = 0.25) -> None:
        if flush_seconds <= 0:
            raise ParameterError(
                f"flush_seconds must be > 0, got {flush_seconds!r}")
        self.host = host
        self.port = port
        self.flush_seconds = flush_seconds
        self.name = "socket"
        self.malformed_lines = 0
        self._queue: "asyncio.Queue[Optional[Tuple[Hashable, float]]]" = (
            asyncio.Queue())
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False

    async def start(self) -> Tuple[str, int]:
        """Bind the listener; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.name = f"socket:{self.host}:{self.port}"
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting packets and end :meth:`batches`."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.put(None)  # sentinel: drain the batch loop

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            async for raw in reader:
                parts = raw.split()
                if len(parts) != 2:
                    self.malformed_lines += 1
                    continue
                try:
                    length = float(parts[1])
                except ValueError:
                    self.malformed_lines += 1
                    continue
                await self._queue.put((parts[0].decode("ascii", "replace"),
                                       length))
        finally:
            writer.close()

    async def batches(self, chunk_packets: int,
                      start: int = 0) -> AsyncIterator[Batch]:
        if self._server is None:
            await self.start()
        batch_keys: List[Hashable] = []
        batch_map = {}
        count = 0

        def flush() -> Batch:
            return (batch_keys,
                    [np.asarray(batch_map[k], dtype=np.float64)
                     for k in batch_keys])

        while True:
            try:
                item = await asyncio.wait_for(self._queue.get(),
                                              timeout=self.flush_seconds)
            except asyncio.TimeoutError:
                if count:
                    yield flush()
                    batch_keys, batch_map, count = [], {}, 0
                continue
            if item is None:
                break
            key, length = item
            lens = batch_map.get(key)
            if lens is None:
                batch_map[key] = lens = []
                batch_keys.append(key)
            lens.append(length)
            count += 1
            if count >= chunk_packets:
                yield flush()
                batch_keys, batch_map, count = [], {}, 0
        if count:
            yield flush()


def make_feed(kind: str, *, trace=None, pairs=None, host: str = "127.0.0.1",
              port: int = 0) -> Feed:
    """Build a feed by kind name — the CLI's ``--feed`` dispatcher.

    ``"trace"`` needs ``trace=``, ``"generator"`` needs ``pairs=``,
    ``"socket"`` takes ``host=``/``port=`` (0 = ephemeral).
    """
    if kind == "trace":
        if trace is None:
            raise ParameterError("feed 'trace' needs trace=")
        return TraceFeed(trace)
    if kind == "generator":
        if pairs is None:
            raise ParameterError("feed 'generator' needs pairs=")
        return GeneratorFeed(pairs)
    if kind == "socket":
        return SocketFeed(host, port)
    raise ParameterError(
        f"unknown feed kind {kind!r}; one of: trace, generator, socket")
