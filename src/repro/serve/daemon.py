"""The long-running measurement daemon: ingest, rotate, answer, survive.

:class:`ServeDaemon` is where every prior subsystem composes — the
paper's linecard deployment shape as a service:

* **Ingestion** — an async loop pulls pre-batched chunks from a
  :mod:`~repro.serve.feeds` feed and drives them through one sharded
  :class:`~repro.streaming.StreamSession` (carried kernel state,
  compact stores, epoch watermarks — all of PR 5/7 unchanged).
* **Queries** — a tiny JSON-over-HTTP surface
  (:mod:`~repro.serve.httpd` + :mod:`~repro.serve.queries`):
  ``GET /flows/{id}``, ``/topk?n=``, ``/epochs``, ``/telemetry``,
  ``/healthz``, plus ``POST /control/rotate|checkpoint|drain``.
* **Crash safety** — checkpoints are daemon-scheduled (every
  ``checkpoint_every`` ingested chunks) through the session's atomic
  temp-file + ``os.replace`` writer, with a ``serve.checkpoint`` fault
  seam *before* each write: an injected failure there crashes the
  daemon between checkpoints, and :func:`build_daemon` with
  ``resume=True`` restores the last published checkpoint and replays
  the exact chunk schedule — final query answers bit-identical to an
  uninterrupted run (the acceptance test of this subsystem).

Concurrency model
-----------------
Everything runs on **one** asyncio event loop, and chunk ingestion is
synchronous within its loop iteration.  That single decision buys the
whole consistency story: an HTTP handler can only ever observe the
session *between* chunks, so every answer reflects a chunk-boundary
state — no locks, no torn reads, no query racing a half-applied batch.
The ``pace`` knob (seconds slept between chunks, default 0 = just yield)
bounds how long queries can be starved by back-to-back ingestion.

Telemetry lands in the ``serve.*`` catalogue (``docs/telemetry.md``);
the daemon defaults to its own enabled session so ``GET /telemetry``
is populated without any environment setup.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro import faults as _faults
from repro import obs
from repro.errors import ParameterError
from repro.serve.feeds import Feed
from repro.serve.httpd import HttpServer, Request
from repro.serve.queries import QueryEngine
from repro.streaming import DEFAULT_CHUNK_PACKETS, StreamSession

__all__ = ["ServeDaemon", "build_daemon"]

#: Sentinel ``checkpoint_every`` for the underlying session: the daemon
#: schedules checkpoints itself (so the ``serve.checkpoint`` fault seam
#: wraps them); the session's own per-chunk trigger must never fire.
_SESSION_NEVER_CHECKPOINTS = 1 << 62


class ServeDaemon:
    """One feed, one stream session, one query endpoint — one event loop.

    Build directly from a prepared session, or through
    :func:`build_daemon` (which owns the create-vs-restore decision).
    ``checkpoint_every`` counts *ingested chunks between scheduled
    checkpoints* (``None`` disables scheduling; manual
    ``POST /control/checkpoint`` still works whenever the session has a
    ``checkpoint_path``).
    """

    def __init__(self, session: StreamSession, feed: Feed, *,
                 host: str = "127.0.0.1", port: int = 0,
                 checkpoint_every: Optional[int] = 4,
                 pace: float = 0.0,
                 telemetry: Optional[obs.Telemetry] = None) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ParameterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every!r}")
        if pace < 0:
            raise ParameterError(f"pace must be >= 0, got {pace!r}")
        self.session = session
        self.feed = feed
        self.host = host
        self.port = port
        self.checkpoint_every = checkpoint_every
        self.pace = pace
        self.telemetry = obs.resolve(telemetry)
        self.queries = QueryEngine(session)

        self.bound_host: Optional[str] = None
        self.bound_port: Optional[int] = None
        #: Set once the HTTP listener is bound — the cross-thread "ready"
        #: signal :class:`~repro.serve.client.DaemonHandle` waits on.
        self.started = threading.Event()
        self.result = None
        self._drain: Optional[asyncio.Event] = None
        self._chunks_since_checkpoint = 0
        # malformed_lines already folded into the telemetry counter, so
        # repeated exports count each dropped line exactly once.
        self._malformed_reported = 0

    # -- lifecycle -----------------------------------------------------------

    async def run(self):
        """Serve until drained (or the feed crashes); returns the result.

        Binds the listener, prints the ``serving on http://host:port``
        banner (the machine-readable ready line the smoke harness and
        ops scripts parse), ingests the feed to exhaustion, keeps
        answering queries until ``POST /control/drain``, then closes the
        session (final rotate + checkpoint) and returns its
        :class:`~repro.streaming.StreamResult`.  An ingestion failure —
        including an armed ``serve.ingest``/``serve.checkpoint`` fault —
        propagates out *without* finishing the session: the previous
        checkpoint stays the truth a resume restores.
        """
        self._drain = asyncio.Event()
        server = HttpServer(self._handle, self.host, self.port,
                            telemetry=self.telemetry)
        try:
            host, port = await server.start()
            self.bound_host, self.bound_port = host, port
            self.telemetry.count("serve.starts")
            print(f"serving on http://{host}:{port}", flush=True)
            self.started.set()

            ingest = asyncio.ensure_future(self._ingest_loop())
            drained = asyncio.ensure_future(self._drain.wait())
            try:
                done, _pending = await asyncio.wait(
                    {ingest, drained},
                    return_when=asyncio.FIRST_COMPLETED)
                if ingest in done:
                    ingest.result()  # re-raise an ingestion crash
                    await drained  # feed exhausted; serve until drained
                else:
                    ingest.cancel()
                    try:
                        await ingest
                    except asyncio.CancelledError:
                        pass
            finally:
                drained.cancel()
                close = getattr(self.feed, "close", None)
                if close is not None:
                    await close()
        finally:
            await server.close()
        self.telemetry.count("serve.drains")
        self.result = self.session.finish()
        return self.result

    def serve_forever(self):
        """Blocking wrapper: run the daemon on a fresh event loop."""
        return asyncio.run(self.run())

    async def _ingest_loop(self) -> None:
        chunk_packets = self.session.chunk_packets
        start = self.session.packets_consumed
        batch_index = 0
        async for keys, length_arrays in self.feed.batches(chunk_packets,
                                                           start=start):
            _faults.fire("serve.ingest", unit=batch_index)
            packets = sum(int(lens.size) for lens in length_arrays)
            volume = sum(int(round(float(lens.sum())))
                         for lens in length_arrays)
            self.session.ingest_chunk(keys, length_arrays)
            self.telemetry.count("serve.ingest.chunks")
            self.telemetry.count("serve.ingest.packets", packets)
            self.telemetry.count("serve.ingest.bytes", volume)
            self._chunks_since_checkpoint += 1
            if (self.checkpoint_every is not None
                    and self.session.checkpoint_path is not None
                    and self._chunks_since_checkpoint
                    >= self.checkpoint_every):
                self._checkpoint()
            batch_index += 1
            # Yield the loop so queued queries run at this chunk boundary.
            await asyncio.sleep(self.pace)

    def _checkpoint(self) -> str:
        """One daemon checkpoint: fault seam first, then the atomic write."""
        _faults.fire("serve.checkpoint")
        path = self.session.checkpoint()
        self.telemetry.count("serve.checkpoints")
        self._chunks_since_checkpoint = 0
        return path

    # -- the query surface ---------------------------------------------------

    def _handle(self, request: Request) -> Tuple[int, object]:
        method, path = request.method, request.path
        if method == "GET":
            if path.startswith("/flows/"):
                self.telemetry.count("serve.query.flows")
                payload = self.queries.flow(path[len("/flows/"):])
                return (200 if payload["found"] else 404), payload
            if path == "/topk":
                self.telemetry.count("serve.query.topk")
                return 200, self.queries.topk(request.int_param("n", 10))
            if path == "/epochs":
                self.telemetry.count("serve.query.epochs")
                return 200, self.queries.epochs()
            if path == "/telemetry":
                self.telemetry.count("serve.query.telemetry")
                self._sync_feed_health()
                return 200, {"type": "telemetry",
                             "telemetry": self.telemetry.snapshot()}
            if path == "/healthz":
                self.telemetry.count("serve.query.healthz")
                return 200, self._healthz()
            return 404, {"error": f"no route for GET {path}"}
        if method == "POST":
            if path == "/control/rotate":
                self.telemetry.count("serve.control.rotate")
                snapshot = self.session.rotate()
                return 200, {"rotated": snapshot is not None,
                             "epochs": len(self.session.snapshots)}
            if path == "/control/checkpoint":
                self.telemetry.count("serve.control.checkpoint")
                return 200, {"checkpoint": self._checkpoint()}
            if path == "/control/drain":
                self.telemetry.count("serve.control.drain")
                if self._drain is not None:
                    self._drain.set()
                return 200, {"draining": True}
            return 404, {"error": f"no route for POST {path}"}
        return 405, {"error": f"method {method} not allowed"}

    def _sync_feed_health(self) -> Optional[int]:
        """Fold the feed's malformed-line count into ``serve.*`` telemetry.

        :class:`~repro.serve.feeds.SocketFeed` counts lines it drops
        (bad field count, non-numeric length) but the counter only lives
        on the feed object — a daemon silently eating garbage input
        would look healthy.  Exported here (delta-counted, so telemetry
        totals stay exact) and surfaced by ``/healthz``.  Returns the
        current total, or ``None`` for feeds without the counter.
        """
        malformed = getattr(self.feed, "malformed_lines", None)
        if malformed is None:
            return None
        delta = int(malformed) - self._malformed_reported
        if delta > 0:
            self.telemetry.count("serve.feed.malformed_lines", delta)
            self._malformed_reported = int(malformed)
        return int(malformed)

    def _healthz(self) -> dict:
        session = self.session
        health = {
            "status": "ok",
            "feed": self.feed.name,
            "scheme": session.scheme_name,
            "mode": session.mode,
            "store": session.store,
            "shards": session.shards,
            "packets_consumed": session.packets_consumed,
            "volume_consumed": session.volume_consumed,
            "epochs": len(session.snapshots),
            "open_epoch_packets": session._epoch_packet_count,
            "draining": bool(self._drain is not None
                             and self._drain.is_set()),
        }
        malformed = self._sync_feed_health()
        if malformed is not None:
            health["malformed_lines"] = malformed
        return health


def build_daemon(
    scheme_factory,
    feed: Feed,
    *,
    shards: int = 1,
    epoch_packets: Optional[int] = None,
    epoch_bytes: Optional[int] = None,
    chunk_packets: Optional[int] = None,
    rng=None,
    workers: Optional[int] = None,
    engine: str = "vector",
    store: Optional[str] = None,
    telemetry: Optional[obs.Telemetry] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: Optional[int] = 4,
    resume: bool = False,
    host: str = "127.0.0.1",
    port: int = 0,
    pace: float = 0.0,
    name: str = "serve",
) -> ServeDaemon:
    """Assemble a daemon: validate, create-or-restore the session, wire up.

    The serve analogue of :func:`repro.stream` — same measurement
    parameters, same :func:`repro.facade._validate` eager checks (so a
    bad ``shards=`` is rejected with the identical message), plus the
    service knobs: ``host``/``port`` (0 = ephemeral) for the listener,
    ``pace`` seconds between chunks, ``checkpoint_every`` ingested
    chunks per scheduled checkpoint.  ``resume=True`` (requires
    ``checkpoint_path=``) restores an existing checkpoint and skips the
    consumed feed prefix; with a deterministic feed the continued run is
    bit-identical to an uninterrupted one.  ``telemetry=None`` gives the
    daemon its own enabled session so ``GET /telemetry`` answers out of
    the box.
    """
    from repro.facade import _validate

    _validate(shards=shards,
              chunk_packets=(DEFAULT_CHUNK_PACKETS if chunk_packets is None
                             else chunk_packets),
              epoch_packets=epoch_packets, epoch_bytes=epoch_bytes,
              workers=workers, stream_engine=engine,
              resume=(resume, checkpoint_path))
    if chunk_packets is None:
        chunk_packets = DEFAULT_CHUNK_PACKETS
    if telemetry is None:
        telemetry = obs.Telemetry()

    import os as _os
    if (resume and checkpoint_path is not None
            and _os.path.exists(checkpoint_path)):
        session = StreamSession.restore(checkpoint_path, workers=workers,
                                        telemetry=telemetry)
        telemetry.count("serve.resumes")
    else:
        session = StreamSession(
            scheme_factory,
            shards=shards,
            epoch_packets=epoch_packets,
            epoch_bytes=epoch_bytes,
            chunk_packets=chunk_packets,
            rng=rng,
            workers=workers,
            engine=engine,
            store=store,
            telemetry=telemetry,
            checkpoint_path=checkpoint_path,
            checkpoint_every=_SESSION_NEVER_CHECKPOINTS,
            name=name,
        )
    return ServeDaemon(session, feed, host=host, port=port,
                       checkpoint_every=checkpoint_every, pace=pace,
                       telemetry=telemetry)
