"""Blocking client + in-process harness for the serve daemon.

Two small pieces every consumer of the daemon shares — the test suite,
``benchmarks/serve_smoke.py`` and perf_gate's query-latency probe:

* :class:`ServeClient` — a synchronous JSON-over-HTTP client on
  :mod:`http.client` (one connection per request, matching the server's
  ``Connection: close``), with a helper per endpoint.
* :class:`DaemonHandle` — a context manager that runs a
  :class:`~repro.serve.daemon.ServeDaemon` on a background thread with
  its own event loop, waits for the listener to bind, and exposes a
  ready :class:`ServeClient`.  On exit it drains the daemon and joins
  the thread; a daemon crash (e.g. an armed ``serve.checkpoint`` fault)
  is captured on :attr:`DaemonHandle.error` instead of being swallowed,
  which is exactly what the crash-safety tests assert on.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Optional, Tuple

from repro.errors import ParameterError

__all__ = ["ServeClient", "DaemonHandle"]


class ServeClient:
    """Synchronous queries against a running daemon."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    def request(self, method: str, path: str) -> Tuple[int, dict]:
        """One exchange; returns ``(status, decoded JSON body)``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(method, path)
            response = conn.getresponse()
            body = response.read()
            return response.status, json.loads(body)
        finally:
            conn.close()

    def get(self, path: str) -> Tuple[int, dict]:
        return self.request("GET", path)

    def post(self, path: str) -> Tuple[int, dict]:
        return self.request("POST", path)

    # -- one helper per endpoint --------------------------------------------

    def healthz(self) -> dict:
        return self._ok(*self.get("/healthz"))

    def flow(self, flow_id) -> dict:
        status, payload = self.get(f"/flows/{flow_id}")
        if status not in (200, 404):  # 404 = flow unseen, still an answer
            raise ParameterError(f"GET /flows/{flow_id} -> {status}: "
                                 f"{payload.get('error', payload)}")
        return payload

    def topk(self, n: int = 10) -> dict:
        return self._ok(*self.get(f"/topk?n={int(n)}"))

    def epochs(self) -> dict:
        return self._ok(*self.get("/epochs"))

    def telemetry(self) -> dict:
        return self._ok(*self.get("/telemetry"))

    def rotate(self) -> dict:
        return self._ok(*self.post("/control/rotate"))

    def checkpoint(self) -> dict:
        return self._ok(*self.post("/control/checkpoint"))

    def drain(self) -> dict:
        return self._ok(*self.post("/control/drain"))

    @staticmethod
    def _ok(status: int, payload: dict) -> dict:
        if status != 200:
            raise ParameterError(
                f"daemon answered {status}: {payload.get('error', payload)}")
        return payload


class DaemonHandle:
    """Run a daemon on a background thread; hand out a bound client.

    ``with DaemonHandle(daemon) as handle: handle.client.topk(5)``.
    The thread runs ``asyncio.run(daemon.run())``; :attr:`result` holds
    the final :class:`~repro.streaming.StreamResult` after a clean
    drain, :attr:`error` the exception if the daemon died.  ``__exit__``
    drains (when still alive) and joins.
    """

    def __init__(self, daemon, start_timeout: float = 15.0) -> None:
        self.daemon = daemon
        self.start_timeout = start_timeout
        self.client: Optional[ServeClient] = None
        self.result = None
        self.error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        try:
            self.result = self.daemon.serve_forever()
        except BaseException as exc:  # captured for the crash tests
            self.error = exc

    def __enter__(self) -> "DaemonHandle":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self.daemon.started.wait(self.start_timeout):
            self._thread.join(timeout=1.0)
            raise RuntimeError(
                f"serve daemon did not bind within {self.start_timeout}s"
                + (f": {self.error!r}" if self.error else ""))
        self.client = ServeClient(self.daemon.bound_host,
                                  self.daemon.bound_port)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread is not None and self._thread.is_alive():
            try:
                self.client.drain()
            except Exception:
                pass  # daemon already dying; join below tells the truth
            self._thread.join(timeout=self.start_timeout)

    def join(self, timeout: float = 30.0) -> "DaemonHandle":
        """Wait for the daemon thread to exit (crash tests use this)."""
        if self._thread is not None:
            self._thread.join(timeout)
        return self
