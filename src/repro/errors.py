"""Exception types shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its valid domain (e.g. ``b <= 1``)."""


class CounterOverflowError(ReproError, OverflowError):
    """A fixed-width counter exceeded its capacity and saturation is disabled."""


class DecodingError(ReproError):
    """An offline decoder (e.g. Counter Braids) failed to converge."""


class TraceFormatError(ReproError, ValueError):
    """A trace file or record stream is malformed."""
