"""Flow-record export format — the NetFlow-shaped output of a monitor.

A measurement interval ends with the monitor exporting one record per
flow: flow key, estimated total, counting mode, and enough metadata to
interpret the estimate (the DISCO parameter ``b`` and the raw counter
value, so collectors can recompute confidence intervals).  This module
defines the record, a compact binary wire format (struct-packed, versioned
header, length-prefixed keys), and a text (CSV) format for debugging.

Wire format v1 (big-endian)::

    header:  magic "DSCX" | u8 version | u8 mode (0=volume 1=size)
             f64 b | u32 record_count
    record:  u16 key_length | key bytes (utf-8) | u32 counter_value
             f64 estimate
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Dict, List, Union

from repro.errors import TraceFormatError

__all__ = ["FlowRecord", "ExportBatch", "write_export", "read_export"]

_MAGIC = b"DSCX"
_VERSION = 1
_HEADER = struct.Struct(">4sBBdI")
_RECORD_FIXED = struct.Struct(">Id")
_KEY_LEN = struct.Struct(">H")

_MODES = ("volume", "size")


@dataclass(frozen=True)
class FlowRecord:
    """One exported flow."""

    key: str
    counter_value: int
    estimate: float

    def __post_init__(self) -> None:
        if self.counter_value < 0:
            raise TraceFormatError(f"negative counter value: {self.counter_value}")
        if self.estimate < 0:
            raise TraceFormatError(f"negative estimate: {self.estimate}")


@dataclass(frozen=True)
class ExportBatch:
    """A full export: interval metadata plus the records."""

    mode: str
    b: float
    records: List[FlowRecord]

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise TraceFormatError(f"unknown mode {self.mode!r}")
        if not (self.b > 1.0):
            raise TraceFormatError(f"b must be > 1, got {self.b!r}")

    @classmethod
    def from_sketch(cls, sketch) -> "ExportBatch":
        """Snapshot a DISCO-style sketch into an export batch."""
        b = getattr(getattr(sketch, "function", None), "b", None)
        if b is None:
            raise TraceFormatError("sketch does not expose a geometric function")
        records = [
            FlowRecord(
                key=str(flow),
                counter_value=sketch.counter_value(flow),
                estimate=sketch.estimate(flow),
            )
            for flow in sketch.flows()
        ]
        return cls(mode=sketch.mode, b=float(b), records=records)

    def estimates(self) -> Dict[str, float]:
        return {r.key: r.estimate for r in self.records}

    @property
    def total(self) -> float:
        return sum(r.estimate for r in self.records)

    def __len__(self) -> int:
        return len(self.records)


def _write_stream(batch: ExportBatch, stream: BinaryIO) -> int:
    stream.write(_HEADER.pack(
        _MAGIC, _VERSION, _MODES.index(batch.mode), batch.b, len(batch.records)
    ))
    written = _HEADER.size
    for record in batch.records:
        key = record.key.encode("utf-8")
        if len(key) > 0xFFFF:
            raise TraceFormatError(f"flow key too long ({len(key)} bytes)")
        stream.write(_KEY_LEN.pack(len(key)))
        stream.write(key)
        stream.write(_RECORD_FIXED.pack(record.counter_value, record.estimate))
        written += _KEY_LEN.size + len(key) + _RECORD_FIXED.size
    return written


def write_export(batch: ExportBatch, target: Union[str, Path, BinaryIO]) -> int:
    """Write a batch to a path or binary stream; returns bytes written."""
    if isinstance(target, (str, Path)):
        with open(target, "wb") as fh:
            return _write_stream(batch, fh)
    return _write_stream(batch, target)


def _read_exact(stream: BinaryIO, n: int, what: str) -> bytes:
    data = stream.read(n)
    if len(data) != n:
        raise TraceFormatError(f"truncated export while reading {what}")
    return data


def read_export(source: Union[str, Path, BinaryIO]) -> ExportBatch:
    """Parse an export written by :func:`write_export`."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            return read_export(fh)
    stream = source
    magic, version, mode_index, b, count = _HEADER.unpack(
        _read_exact(stream, _HEADER.size, "header")
    )
    if magic != _MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise TraceFormatError(f"unsupported version {version}")
    if mode_index >= len(_MODES):
        raise TraceFormatError(f"unknown mode index {mode_index}")
    records: List[FlowRecord] = []
    for i in range(count):
        (key_len,) = _KEY_LEN.unpack(_read_exact(stream, _KEY_LEN.size, "key length"))
        key = _read_exact(stream, key_len, f"key of record {i}").decode("utf-8")
        counter_value, estimate = _RECORD_FIXED.unpack(
            _read_exact(stream, _RECORD_FIXED.size, f"record {i}")
        )
        records.append(FlowRecord(key=key, counter_value=counter_value,
                                  estimate=estimate))
    trailing = stream.read(1)
    if trailing:
        raise TraceFormatError("trailing bytes after last record")
    return ExportBatch(mode=_MODES[mode_index], b=b, records=records)
