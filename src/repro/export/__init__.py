"""Flow-record export: versioned binary format plus collector-side queries."""

from repro.export.collector import Collector, FlowSeries
from repro.export.records import ExportBatch, FlowRecord, read_export, write_export

__all__ = [
    "FlowRecord",
    "ExportBatch",
    "write_export",
    "read_export",
    "Collector",
    "FlowSeries",
]
