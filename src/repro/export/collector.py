"""Collector-side processing of flow-record exports.

A collector receives one export batch per monitor per interval and turns
them into answers: merged totals across intervals, per-flow time series,
and re-derived confidence intervals (possible because exports carry the
raw counter value and ``b``, not just the point estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.confidence import confidence_interval
from repro.errors import ParameterError, TraceFormatError
from repro.export.records import ExportBatch

__all__ = ["Collector", "FlowSeries"]


@dataclass
class FlowSeries:
    """Per-interval estimates of one flow, in arrival order."""

    key: str
    estimates: List[float] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(self.estimates)

    @property
    def intervals(self) -> int:
        return len(self.estimates)


class Collector:
    """Accumulates export batches and answers queries over them.

    All ingested batches must agree on the counting mode; ``b`` may vary
    between batches (a monitor may re-tune), which is why intervals are
    kept separately rather than merged at the counter level.
    """

    def __init__(self) -> None:
        # One entry per interval; epoch snapshots (which carry no raw
        # counters) occupy their slot as ``None``.
        self._batches: List[Optional[ExportBatch]] = []
        self._totals: List[float] = []
        self._series: Dict[str, FlowSeries] = {}
        self.mode: Optional[str] = None
        # Scheme / store pinned by the first ingested snapshot; estimates
        # from different schemes (or counter-store backends) are not
        # comparable, so mixing them is rejected rather than silently
        # summed into nonsense.
        self._snapshot_scheme: Optional[str] = None
        self._snapshot_store: Optional[str] = None

    def _check_mode(self, mode: str, what: str) -> None:
        if self.mode is None:
            self.mode = mode
        elif mode != self.mode:
            raise TraceFormatError(
                f"mode mismatch: collector holds {self.mode!r}, {what} is "
                f"{mode!r}"
            )

    def ingest(self, batch: ExportBatch) -> None:
        """Add one interval's export."""
        self._check_mode(batch.mode, "batch")
        self._batches.append(batch)
        self._totals.append(batch.total)
        for record in batch.records:
            series = self._series.setdefault(record.key, FlowSeries(record.key))
            series.estimates.append(record.estimate)

    def ingest_snapshot(self, snapshot) -> None:
        """Add one stream epoch as an interval.

        Accepts anything snapshot-shaped — a ``mode`` attribute plus an
        ``estimates_dict()`` — in practice
        :class:`repro.streaming.EpochSnapshot`.  Flow keys are
        stringified to match the export-record convention, so stream
        epochs and monitor exports merge into one per-flow series.
        Snapshots carry point estimates only (no raw counters or ``b``),
        so :meth:`interval_confidence` cannot re-derive intervals for
        them.

        Snapshots must come from one measurement configuration: the
        first ingested snapshot pins its ``scheme_name`` and ``store``,
        and a later snapshot disagreeing on either raises
        :class:`~repro.errors.ParameterError` — merging epochs measured
        by different schemes (or decoded from different counter-store
        backends) would sum incomparable estimates silently.
        """
        self._check_mode(snapshot.mode, "snapshot")
        scheme = getattr(snapshot, "scheme_name", None)
        store = getattr(snapshot, "store", None)
        if self._snapshot_scheme is None:
            self._snapshot_scheme = scheme
            self._snapshot_store = store
        else:
            if scheme != self._snapshot_scheme:
                raise ParameterError(
                    f"snapshot scheme mismatch: collector holds epochs from "
                    f"{self._snapshot_scheme!r}, got {scheme!r} — merged "
                    f"epochs must come from one scheme configuration")
            if store != self._snapshot_store:
                raise ParameterError(
                    f"snapshot store mismatch: collector holds epochs from "
                    f"store={self._snapshot_store!r}, got {store!r} — merged "
                    f"epochs must come from one store configuration")
        estimates = snapshot.estimates_dict()
        self._batches.append(None)
        self._totals.append(float(sum(estimates.values())))
        for key, estimate in estimates.items():
            name = str(key)
            series = self._series.setdefault(name, FlowSeries(name))
            series.estimates.append(float(estimate))

    @property
    def intervals(self) -> int:
        return len(self._batches)

    def flows(self) -> List[str]:
        return list(self._series)

    def series(self, key: str) -> FlowSeries:
        series = self._series.get(key)
        if series is None:
            return FlowSeries(key=key)
        return series

    def flow_total(self, key: str) -> float:
        """Flow total across all ingested intervals."""
        return self.series(key).total

    def interval_totals(self) -> List[float]:
        """Link-total estimate per interval."""
        return list(self._totals)

    def top_flows(self, k: int) -> List[Tuple[str, float]]:
        """k largest flows by all-interval total, descending."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k!r}")
        totals = [(key, s.total) for key, s in self._series.items()]
        totals.sort(key=lambda kv: kv[1], reverse=True)
        return totals[:k]

    def interval_confidence(self, interval: int, key: str, level: float = 0.95):
        """Recomputed confidence interval for one flow in one interval.

        Possible because the export carries the raw counter value and the
        monitor's ``b`` — the collector does not need to trust the point
        estimate's error silently.
        """
        if not (0 <= interval < len(self._batches)):
            raise ParameterError(f"interval {interval} out of range")
        batch = self._batches[interval]
        if batch is None:
            raise ParameterError(
                f"interval {interval} came from an epoch snapshot; "
                f"confidence re-derivation needs an export batch (raw "
                f"counter and b)")
        record = next((r for r in batch.records if r.key == key), None)
        if record is None:
            return None
        return confidence_interval(batch.b, record.counter_value, level=level)
