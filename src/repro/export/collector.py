"""Collector-side processing of flow-record exports.

A collector receives one export batch per monitor per interval and turns
them into answers: merged totals across intervals, per-flow time series,
and re-derived confidence intervals (possible because exports carry the
raw counter value and ``b``, not just the point estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.confidence import confidence_interval
from repro.errors import ParameterError, TraceFormatError
from repro.export.records import ExportBatch

__all__ = ["Collector", "FlowSeries"]


@dataclass
class FlowSeries:
    """Per-interval estimates of one flow, in arrival order."""

    key: str
    estimates: List[float] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(self.estimates)

    @property
    def intervals(self) -> int:
        return len(self.estimates)


class Collector:
    """Accumulates export batches and answers queries over them.

    All ingested batches must agree on the counting mode; ``b`` may vary
    between batches (a monitor may re-tune), which is why intervals are
    kept separately rather than merged at the counter level.
    """

    def __init__(self) -> None:
        self._batches: List[ExportBatch] = []
        self._series: Dict[str, FlowSeries] = {}
        self.mode: Optional[str] = None

    def ingest(self, batch: ExportBatch) -> None:
        """Add one interval's export."""
        if self.mode is None:
            self.mode = batch.mode
        elif batch.mode != self.mode:
            raise TraceFormatError(
                f"mode mismatch: collector holds {self.mode!r}, batch is "
                f"{batch.mode!r}"
            )
        self._batches.append(batch)
        for record in batch.records:
            series = self._series.setdefault(record.key, FlowSeries(record.key))
            series.estimates.append(record.estimate)

    @property
    def intervals(self) -> int:
        return len(self._batches)

    def flows(self) -> List[str]:
        return list(self._series)

    def series(self, key: str) -> FlowSeries:
        series = self._series.get(key)
        if series is None:
            return FlowSeries(key=key)
        return series

    def flow_total(self, key: str) -> float:
        """Flow total across all ingested intervals."""
        return self.series(key).total

    def interval_totals(self) -> List[float]:
        """Link-total estimate per interval."""
        return [batch.total for batch in self._batches]

    def top_flows(self, k: int) -> List[Tuple[str, float]]:
        """k largest flows by all-interval total, descending."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k!r}")
        totals = [(key, s.total) for key, s in self._series.items()]
        totals.sort(key=lambda kv: kv[1], reverse=True)
        return totals[:k]

    def interval_confidence(self, interval: int, key: str, level: float = 0.95):
        """Recomputed confidence interval for one flow in one interval.

        Possible because the export carries the raw counter value and the
        monitor's ``b`` — the collector does not need to trust the point
        estimate's error silently.
        """
        if not (0 <= interval < len(self._batches)):
            raise ParameterError(f"interval {interval} out of range")
        batch = self._batches[interval]
        record = next((r for r in batch.records if r.key == key), None)
        if record is None:
            return None
        return confidence_interval(batch.b, record.counter_value, level=level)
