#!/usr/bin/env python3
"""The operational comparison: sampled NetFlow vs a DISCO monitor + collector.

Runs the same backbone-like traffic through (a) a sampled NetFlow with a
bounded flow cache and (b) a DISCO sketch whose interval exports feed a
collector, then compares accuracy, state, and export churn — the deployed
systems view of the paper's argument.

Run:  python examples/netflow_collector.py
"""

from repro import DiscoSketch, choose_b
from repro.counters import SampledNetflow
from repro.export import Collector, ExportBatch
from repro.harness import render_table
from repro.metrics.errors import relative_errors, summarize_errors
from repro.traces import nlanr_like

trace = nlanr_like(num_flows=200, mean_flow_bytes=30_000,
                   max_flow_bytes=800_000, rng=7)
truths = {f: float(v) for f, v in trace.true_totals("volume").items()}
packets = list(trace.packet_pairs(rng=8))
print(f"Workload: {len(truths)} flows, {len(packets)} packets, "
      f"{sum(truths.values()) / 1e6:.1f} MB")
print()

# --- DISCO monitor exporting to a collector over 3 intervals -----------------
b = choose_b(12, max(truths.values()), slack=1.5)
collector = Collector()
interval_size = len(packets) // 3 + 1
for interval in range(3):
    sketch = DiscoSketch(b=b, mode="volume", rng=10 + interval)
    for flow, length in packets[interval * interval_size:
                                (interval + 1) * interval_size]:
        sketch.observe(flow, length)
    collector.ingest(ExportBatch.from_sketch(sketch))

disco_estimates = {flow: collector.flow_total(str(flow)) for flow in truths}
disco_summary = summarize_errors(relative_errors(disco_estimates, truths))

# --- Sampled NetFlow ----------------------------------------------------------
rows = []
for rate_label, rate in (("1/8", 1 / 8), ("1/32", 1 / 32)):
    nf = SampledNetflow(sampling_rate=rate, cache_entries=1024,
                        mode="volume", rng=20)
    for flow, length in packets:
        nf.observe(flow, length)
    nf.flush()
    estimates = {flow: nf.estimate(flow) for flow in truths}
    summary = summarize_errors(relative_errors(estimates, truths))
    rows.append([f"NetFlow {rate_label}", summary.average, summary.maximum,
                 len(nf.exports), "sampled, cache-managed"])

rows.insert(0, ["DISCO (12-bit) + collector", disco_summary.average,
                disco_summary.maximum, collector.intervals,
                "per-flow counters in SRAM"])

print(render_table(
    ["system", "avg rel err", "max rel err", "exports", "state model"],
    rows,
))

print()
flow, total = collector.top_flows(1)[0]
ci = collector.interval_confidence(0, flow)
print(f"Collector view: top flow {flow!r} totals {total / 1e3:.1f} KB; "
      f"interval-0 95% CI {ci.low / 1e3:.1f}..{ci.high / 1e3:.1f} KB")
print()
print("Reading: at equal (or far less) per-flow state DISCO's bounded-error")
print("counters beat packet sampling by orders of magnitude, and exports")
print("happen once per interval instead of churning with cache pressure.")
