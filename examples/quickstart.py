#!/usr/bin/env python3
"""Quickstart: count flow volume with DISCO and read unbiased estimates.

Run:  python examples/quickstart.py
"""

from repro import DiscoCounter, DiscoSketch, choose_b, counter_bits, cov_bound

# ---------------------------------------------------------------------------
# 1. A single discount counter (the Figure 1 example from the paper).
# ---------------------------------------------------------------------------
counter = DiscoCounter(b=1.08, rng=42)
for packet_length in (81, 1420, 142, 691):
    counter.add(packet_length)

print("Single DISCO counter (b=1.08)")
print(f"  true bytes      : {81 + 1420 + 142 + 691}")
print(f"  counter value   : {counter.value}  ({counter.bits_used()} bits)")
print(f"  estimate f(c)   : {counter.estimate():.1f}")
print()

# ---------------------------------------------------------------------------
# 2. Pick b from an accuracy target, or from a memory budget.
# ---------------------------------------------------------------------------
# "I can afford 10-bit counters and my biggest flow is ~1 MB":
b_budget = choose_b(counter_bits=10, max_flow_length=1_000_000)
print(f"Smallest b fitting 1 MB flows in 10 bits : {b_budget:.5f} "
      f"(error bound {cov_bound(b_budget):.3f})")

# ---------------------------------------------------------------------------
# 3. Per-flow statistics: one sketch, many flows, on-line reads.
# ---------------------------------------------------------------------------
import random

sketch = DiscoSketch(b=b_budget, mode="volume", rng=7)
rand = random.Random(0)
truth = {}
for _ in range(20_000):
    flow = f"10.0.0.{rand.randrange(16)}->10.0.1.1:443"
    length = rand.randint(40, 1500)
    sketch.observe(flow, length)
    truth[flow] = truth.get(flow, 0) + length

print()
print(f"Per-flow sketch: {len(sketch)} flows, "
      f"largest counter {sketch.max_counter_value()} "
      f"({sketch.max_counter_bits()} bits)")
print(f"{'flow':<28} {'true bytes':>12} {'estimate':>12} {'rel err':>8}")
for flow in sorted(truth)[:8]:
    n = truth[flow]
    est = sketch.estimate(flow)
    print(f"{flow:<28} {n:>12} {est:>12.0f} {abs(est - n) / n:>8.4f}")

# A full-size counter for the largest flow would need this many bits:
largest = max(truth.values())
print()
print(f"Full-size counter for largest flow : {largest.bit_length()} bits")
print(f"DISCO counter for the same flow    : {sketch.max_counter_bits()} bits")
