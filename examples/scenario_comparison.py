#!/usr/bin/env python3
"""Mini Table II: DISCO vs SAC across the paper's synthetic scenarios.

Generates Scenario 1 (Pareto flows), Scenario 2 (exponential flows) and
Scenario 3 (uniform flows), then sweeps counter sizes 8-10 bits and prints
the average relative error of both schemes — the fixed-memory accuracy
comparison at the heart of the evaluation.

Run:  python examples/scenario_comparison.py
"""

from repro.harness import render_table, table2
from repro.traces import scenario1, scenario2, scenario3

print("Generating scenarios (scaled: 200/100/100 flows)...")
traces = {
    "scenario1 (Pareto 1.053)": scenario1(num_flows=200, rng=10,
                                          max_flow_packets=20_000),
    "scenario2 (Exp 800)": scenario2(num_flows=100, rng=11),
    "scenario3 (U[2,1600])": scenario3(num_flows=100, rng=12),
}
for name, trace in traces.items():
    stats = trace.stats()
    print(f"  {name}: {stats.mean_flow_packets:.1f} pkts/flow, "
          f"{stats.mean_flow_bytes / 1e3:.1f} KB/flow")
print()

rows = table2(traces, counter_sizes=(8, 9, 10), seed=99)
print("Average relative error, flow volume counting")
print(render_table(
    ["scenario", "counter bits", "SAC", "DISCO", "DISCO wins by"],
    [
        [r["scenario"], r["counter_bits"], r["sac_avg_error"],
         r["disco_avg_error"],
         f"{r['sac_avg_error'] / r['disco_avg_error']:.2f}x"]
        for r in rows
    ],
))

print()
print("Reading: with the same fixed counter width, DISCO's probabilistic")
print("discount update tracks flow volume with roughly half SAC's error;")
print("every extra bit of counter roughly halves both schemes' error.")
