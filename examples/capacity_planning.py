#!/usr/bin/env python3
"""Capacity planning for a DISCO monitor: MEs, ring depth, offered load.

Uses the scratchpad-ring model to answer: for a target line rate, how many
MicroEngines and how much ring depth does the monitor need, and does burst
aggregation change the answer?

Run:  python examples/capacity_planning.py
"""

from repro.harness import render_table
from repro.ixp import IxpConfig, RingConfig, eighty_twenty_bursts, simulate_offered_load

WORKLOAD = eighty_twenty_bursts(num_packets=20_000, burst_max=8, rng=3)

print("Offered-load sweep: 1 ME, no burst aggregation, ring depth 256")
rows = []
for gbps in (4, 8, 10, 12, 16, 24):
    result = simulate_offered_load(WORKLOAD, offered_gbps=float(gbps))
    rows.append([
        gbps, result.carried_gbps, f"{result.drop_rate * 100:.1f}%",
        result.max_occupancy, result.mean_wait_ns,
        "OK" if result.stable else "OVERLOAD",
    ])
print(render_table(
    ["offered Gbps", "carried Gbps", "drops", "max ring", "mean wait ns",
     "verdict"],
    rows,
))

print()
print("Fixing 24 Gbps offered: what provisioning keeps up?")
rows = []
for label, config in (
    ("1 ME", RingConfig(ixp=IxpConfig(num_mes=1))),
    ("1 ME + burst aggregation", RingConfig(ixp=IxpConfig(num_mes=1,
                                                          burst_aggregation=True))),
    ("2 MEs", RingConfig(ixp=IxpConfig(num_mes=2))),
    ("4 MEs", RingConfig(ixp=IxpConfig(num_mes=4))),
    ("4 MEs, tiny ring (8)", RingConfig(capacity=8,
                                        ixp=IxpConfig(num_mes=4))),
):
    result = simulate_offered_load(WORKLOAD, offered_gbps=24.0, config=config)
    rows.append([
        label, result.carried_gbps, f"{result.drop_rate * 100:.1f}%",
        result.max_occupancy, "OK" if result.stable else "OVERLOAD",
    ])
print(render_table(
    ["provisioning", "carried Gbps", "drops", "max ring", "verdict"],
    rows,
))

print()
print("Reading: one ME saturates near the paper's 11 Gbps; burst")
print("aggregation nearly triples a single ME's capacity, and ring depth")
print("only matters once the MEs are the bottleneck.")
