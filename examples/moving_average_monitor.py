#!/usr/bin/env python3
"""A long-running monitor: exponentially-weighted totals + change alarms.

Runs a DISCO sketch over many measurement intervals, decaying history at
each boundary (``AgingDiscoSketch``), and raises error-aware change alarms
(``ChangeDetector``) when a flow's behaviour genuinely shifts — while a
diurnal-like wobble inside the estimator noise stays quiet.

Run:  python examples/moving_average_monitor.py
"""

import random

from repro.apps import ChangeDetector
from repro.core.aging import AgingDiscoSketch
from repro.harness import render_table

B = 1.01
GAMMA = 0.5  # half-life of one interval
INTERVALS = 8
rand = random.Random(99)

sketch = AgingDiscoSketch(b=B, mode="volume", rng=1)
detector = ChangeDetector(b=B, level=0.99, min_change=100_000.0)

print(f"{INTERVALS} intervals, decay {GAMMA}/interval, b={B}")
print()

rows = []
previous = {}
alarm_log = []
for interval in range(INTERVALS):
    # Steady flows wobble +-10%; "burst" flow turns on in interval 5.
    for flow in range(6):
        base = 400 + 50 * flow
        packets = int(200 * rand.uniform(0.9, 1.1))
        for _ in range(packets):
            sketch.observe(f"steady{flow}", base)
    if interval >= 5:
        for _ in range(800):
            sketch.observe("burst", 1500)

    current = dict(sketch.estimates())
    changes = detector.compare(previous, current)
    for change in changes:
        alarm_log.append((interval, change.flow, change.change))
    previous = current
    total = sum(current.values())
    rows.append([interval, len(current), total / 1e6,
                 current.get("burst", 0.0) / 1e6,
                 ", ".join(str(c.flow) for c in changes) or "-"])
    pruned = sketch.age(GAMMA)

print(render_table(
    ["interval", "flows", "EWMA total MB", "burst EWMA MB", "alarms"],
    rows,
))

print()
burst_alarms = [a for a in alarm_log if a[1] == "burst"]
steady_alarms = [a for a in alarm_log if str(a[1]).startswith("steady")]
print(f"burst alarms: {len(burst_alarms)} (first at interval "
      f"{burst_alarms[0][0] if burst_alarms else '-'}); "
      f"steady-flow false alarms: {len(steady_alarms)}")
print()
print("Reading: the aged sketch keeps a bounded flow table and a recency-")
print("weighted view; the detector's Theorem-2 noise floor lets the real")
print("onset through while the +-10% wobble stays below the alarm bar.")
