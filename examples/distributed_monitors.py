#!/usr/bin/env python3
"""Distributed monitoring: two taps, one answer.

Two monitors observe disjoint halves of the same traffic (think: the two
directions of a link, or two members of a LAG).  Each keeps its own DISCO
sketch; the collector either sums their estimates per flow or folds the
two sketches into one with the O(1) counter merge — both unbiased.

Run:  python examples/distributed_monitors.py
"""

import random

from repro import DiscoSketch, choose_b, merge_sketches, merged_estimate
from repro.harness import render_table
from repro.traces import nlanr_like

trace = nlanr_like(num_flows=120, mean_flow_bytes=30_000,
                   max_flow_bytes=600_000, rng=17)
truths = trace.true_totals("volume")
packets = list(trace.packet_pairs(rng=18))
b = choose_b(12, max(truths.values()), slack=1.5)

# Split packets across two monitors (ECMP-style hash on packet index).
monitor_a = DiscoSketch(b=b, mode="volume", rng=20)
monitor_b = DiscoSketch(b=b, mode="volume", rng=21)
for i, (flow, length) in enumerate(packets):
    (monitor_a if i % 2 == 0 else monitor_b).observe(flow, length)

print(f"Traffic split across two monitors: "
      f"{monitor_a.packets_observed} + {monitor_b.packets_observed} packets, "
      f"{len(truths)} flows, b={b:.5f}")
print()

# Strategy 1: collector sums per-flow estimates.
# Strategy 2: fold monitor B's counters into A's (one update per flow).
merged = merge_sketches(monitor_a, monitor_b, rng=22)

rows = []
for flow in sorted(truths, key=truths.get, reverse=True)[:8]:
    truth = truths[flow]
    summed = merged_estimate(monitor_a.function,
                             monitor_a.counter_value(flow),
                             monitor_b.counter_value(flow))
    folded = merged.estimate(flow)
    rows.append([
        flow, truth / 1e3, summed / 1e3, folded / 1e3,
        abs(summed - truth) / truth, abs(folded - truth) / truth,
    ])

print("Top flows: true vs summed-estimates vs counter-merged (KB)")
print(render_table(
    ["flow", "true", "summed", "merged", "summed R", "merged R"],
    rows,
))

total_true = sum(truths.values())
total_merged = sum(merged.estimates().values())
print()
print(f"Link total via merged sketch: {total_merged / 1e6:.2f} MB "
      f"(true {total_true / 1e6:.2f} MB, "
      f"error {abs(total_merged - total_true) / total_true:.4f})")
print()
print("Reading: per-flow DISCO estimates compose — summing is exactly")
print("unbiased, and the O(1) counter merge keeps a single array's memory")
print("footprint at a small extra variance cost.")
