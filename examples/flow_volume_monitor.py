#!/usr/bin/env python3
"""A passive monitoring component on a synthetic OC-192-like link.

Replays an NLANR-like backbone trace through four counter architectures —
DISCO, SAC, a hybrid SRAM/DRAM (SD) array, and exact counters — and prints
the accuracy/memory/limitations comparison that motivates the paper, plus a
DISCO-based heavy-hitter report.

Run:  python examples/flow_volume_monitor.py [num_flows]
"""

import sys

from repro import DiscoSketch, choose_b, replay
from repro.counters import ExactCounters, SdCounters, SmallActiveCounters
from repro.harness import render_table
from repro.traces import nlanr_like

NUM_FLOWS = int(sys.argv[1]) if len(sys.argv) > 1 else 300
COUNTER_BITS = 10

print(f"Synthesizing NLANR-like trace ({NUM_FLOWS} flows)...")
trace = nlanr_like(num_flows=NUM_FLOWS, mean_flow_bytes=40_000, rng=1)
stats = trace.stats()
print(f"  {stats.num_flows} flows, {stats.num_packets} packets, "
      f"{stats.total_bytes / 1e6:.1f} MB")
print(f"  mean flow volume {stats.mean_flow_bytes / 1e3:.1f} KB, "
      f"mean packet {stats.mean_packet_length:.0f} B")
print()

max_volume = max(trace.true_totals("volume").values())
b = choose_b(COUNTER_BITS, max_volume, slack=1.5)

schemes = {
    "DISCO": DiscoSketch(b=b, mode="volume", rng=2, capacity_bits=COUNTER_BITS),
    "SAC": SmallActiveCounters(total_bits=COUNTER_BITS, mode_bits=3,
                               mode="volume", rng=3),
    "SD (hybrid)": SdCounters(sram_bits=16, dram_access_ratio=12,
                              mode="volume", rng=4),
    "exact": ExactCounters(mode="volume"),
}

results = {}
for name, scheme in schemes.items():
    results[name] = replay(scheme, trace, rng=5)

sd = schemes["SD (hybrid)"]
sd.drain()

print(f"Counter architectures at work (DISCO/SAC at {COUNTER_BITS}-bit "
      f"counters, b={b:.5f})")
print(render_table(
    ["scheme", "avg rel err", "max rel err", "counter bits", "notes"],
    [
        ["DISCO", results["DISCO"].summary.average,
         results["DISCO"].summary.maximum,
         results["DISCO"].max_counter_bits, "SRAM only, on-line reads"],
        ["SAC", results["SAC"].summary.average,
         results["SAC"].summary.maximum,
         results["SAC"].max_counter_bits,
         f"{schemes['SAC'].global_renormalizations} global renorms"],
        ["SD (hybrid)", results["SD (hybrid)"].summary.average,
         results["SD (hybrid)"].summary.maximum,
         results["SD (hybrid)"].max_counter_bits,
         f"{sd.bus_bits_transferred / 8e3:.0f} KB bus traffic, "
         f"{sd.dram_reads} DRAM reads"],
        ["exact", results["exact"].summary.average,
         results["exact"].summary.maximum,
         results["exact"].max_counter_bits, "reference"],
    ],
))

# ---------------------------------------------------------------------------
# Heavy hitters straight off the DISCO sketch (on-line capability).
# ---------------------------------------------------------------------------
disco = schemes["DISCO"]
top = sorted(disco.estimates().items(), key=lambda kv: kv[1], reverse=True)[:5]
truth = trace.true_totals("volume")

print()
print("Top-5 flows by DISCO estimate (on-line heavy-hitter query)")
print(render_table(
    ["flow", "estimated KB", "true KB", "rel err"],
    [
        [flow, est / 1e3, truth[flow] / 1e3, abs(est - truth[flow]) / truth[flow]]
        for flow, est in top
    ],
))

total_memory_bits = len(disco) * COUNTER_BITS
print()
print(f"DISCO counter memory: {len(disco)} flows x {COUNTER_BITS} bits "
      f"= {total_memory_bits / 8e3:.1f} KB of SRAM")
full_bits = max(truth.values()).bit_length()
print(f"Full-size equivalent: {len(disco)} flows x {full_bits} bits "
      f"= {len(disco) * full_bits / 8e3:.1f} KB")
