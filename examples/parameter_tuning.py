#!/usr/bin/env python3
"""Choosing DISCO's parameter ``b``: the error/memory dial.

Shows the three ways to pick ``b`` in practice, all backed by Section IV's
theory:

1. from a target relative-error bound (Corollary 1, inverted),
2. from a counter-width budget and the largest expected flow (Theorem 3),
3. empirically, by sweeping b on a sample workload.

Run:  python examples/parameter_tuning.py
"""

from repro import DiscoSketch, b_for_cov_bound, choose_b, cov_bound, replay
from repro.core.analysis import expected_counter_upper_bound
from repro.harness import render_table
from repro.traces import nlanr_like

# ---------------------------------------------------------------------------
# 1. "I want relative error below 2%."
# ---------------------------------------------------------------------------
b_error = b_for_cov_bound(0.02)
print("Target: coefficient of variation <= 2%")
print(f"  b = (1 + e^2)/(1 - e^2) = {b_error:.6f}")
print(f"  counter for a 1 GB flow: "
      f"{expected_counter_upper_bound(b_error, 1e9):.0f} "
      f"({int(expected_counter_upper_bound(b_error, 1e9)).bit_length()} bits)")
print()

# ---------------------------------------------------------------------------
# 2. "I have 12-bit counters and flows up to 100 MB."
# ---------------------------------------------------------------------------
b_memory = choose_b(counter_bits=12, max_flow_length=100e6)
print("Budget: 12-bit counters, flows up to 100 MB")
print(f"  smallest fitting b = {b_memory:.6f}")
print(f"  implied error bound = {cov_bound(b_memory):.4f}")
print()

# ---------------------------------------------------------------------------
# 3. Empirical sweep on a workload sample.
# ---------------------------------------------------------------------------
print("Empirical sweep on an NLANR-like sample (200 flows)")
trace = nlanr_like(num_flows=200, mean_flow_bytes=30_000, rng=5)
rows = []
for b in (1.002, 1.01, 1.02, 1.05, 1.1):
    sketch = DiscoSketch(b=b, mode="volume", rng=6)
    result = replay(sketch, trace, rng=7)
    rows.append([
        b,
        cov_bound(b),
        result.summary.average,
        result.summary.optimistic_95,
        result.max_counter_bits,
    ])
print(render_table(
    ["b", "error bound", "avg rel err", "R_o(0.95)", "max counter bits"],
    rows,
))
print()
print("Reading: move b up to shrink counters, down to shrink error; the")
print("empirical average error always sits inside the Corollary 1 bound.")
