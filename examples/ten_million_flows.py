#!/usr/bin/env python3
"""Ten million concurrent DISCO flows on commodity RAM via the pools store.

The monolithic dense pipeline cannot honestly reach 10M flows on a
laptop: a list-of-lists trace, per-flow key dicts, and truth tables each
cost gigabytes before the first counter is written.  This example runs
the same measurement the way a collector would — in flow segments:

1. partition the flow space into segments of ``SEGMENT_FLOWS`` flows,
2. replay each segment's packets through the DISCO columnar kernel
   (dense NumPy inside the hot loop, as always),
3. scatter the segment's final counters into ONE global Counter Pools
   column (:class:`repro.core.stores.PoolStore`) spanning all flows —
   the only state that stays resident across segments.

The pools column holds mice at one byte and promotes elephant pools to
wider classes on overflow, so the resident footprint is ~1-2 bytes per
flow instead of the dense 8 — and the store is lossless, which the
example proves by re-reading a segment's counters bit-for-bit after
every later segment has written around (and promoted pools under) them.

Run:  PYTHONPATH=src python examples/ten_million_flows.py
      PYTHONPATH=src python examples/ten_million_flows.py \
          --flows 10000000 --record   # full run, logs BENCH_perf.json
"""

import argparse
import resource
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

#: Default scale: quick enough for ``make examples``.  The headline run
#: is ``--flows 10000000``.
DEFAULT_FLOWS = 1_000_000
#: Flows replayed per segment — bounds the transient dense working set
#: (counters, index, per-segment trace) regardless of total scale.
SEGMENT_FLOWS = 200_000
DISCO_B = 1.02
SEED = 20100624


def build_segment(flows: int, rng: int):
    """One segment's compiled workload: heavy-tailed, keys ``0..flows-1``.

    Built directly in struct-of-arrays form; a Python list-of-lists
    trace at this scale would be the memory hog this example exists to
    avoid.
    """
    from repro.traces.compiled import CompiledTrace

    gen = np.random.default_rng(rng)
    sizes = 1 + np.minimum(gen.pareto(1.4, flows) * 2.0,
                           20_000).astype(np.int64)
    sizes[::-1].sort()  # compiled form: descending packet budget
    offsets = np.zeros(flows + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    lengths = gen.integers(40, 1501, size=int(offsets[-1])) \
        .astype(np.float64)
    volumes = np.add.reduceat(lengths, offsets[:-1]).astype(np.int64)
    return CompiledTrace(name=f"segment-{rng}", keys=list(range(flows)),
                         lengths=lengths, offsets=offsets, sizes=sizes,
                         volumes=volumes)


def peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run(total_flows: int) -> dict:
    from repro.core.batchreplay import run_kernel
    from repro.core.kernels import kernel_spec
    from repro.core.stores import make_store
    from repro.schemes import make_scheme

    segments = (total_flows + SEGMENT_FLOWS - 1) // SEGMENT_FLOWS
    spec = kernel_spec(make_scheme("disco", b=DISCO_B, seed=0))

    # The only cross-segment state: one pools column spanning every flow.
    store = make_store("pools")
    store.write("counters", np.zeros(total_flows, dtype=np.int64))

    first_rows = first_counters = None  # round-trip witness (segment 0)
    true_total = 0.0
    est_total = 0.0
    packets = 0
    start = time.perf_counter()
    for seg in range(segments):
        base = seg * SEGMENT_FLOWS
        flows = min(SEGMENT_FLOWS, total_flows - base)
        trace = build_segment(flows, rng=SEED + seg)
        result = run_kernel(trace, spec.factory, mode=spec.mode, rng=seg)
        # result.counters is row-aligned with result.keys (segment-local
        # flow ids), so the global lane of row i is base + keys[i].
        rows = base + np.asarray(result.keys, dtype=np.int64)
        store.add("counters", rows, np.asarray(result.counters))
        true_total += float(trace.volumes.sum())
        est_total += float(np.sum(result.estimates))
        packets += result.packets
        if seg == 0:
            first_rows = rows.copy()
            first_counters = np.asarray(result.counters).copy()
        if segments >= 10 and (seg + 1) % max(1, segments // 10) == 0:
            done = base + flows
            print(f"  ... {done:>10,} flows   "
                  f"store {store.nbytes() / 1e6:7.1f} MB   "
                  f"peak RSS {peak_rss_mb():7.1f} MB")
    elapsed = time.perf_counter() - start

    # Lossless round-trip: segment 0's counters survive every later
    # write (and any pool promotions those writes caused) bit-for-bit.
    final = store.read("counters")
    if not np.array_equal(final[first_rows], first_counters):
        raise AssertionError("pools store corrupted earlier counters")

    return {
        "flows": total_flows,
        "segments": segments,
        "packets": packets,
        "elapsed": elapsed,
        "store_bytes": store.nbytes(),
        "dense_bytes": total_flows * 8,  # one int64 lane per flow
        "promotions": store.promotions,
        "true_total": true_total,
        "est_total": est_total,
        "peak_rss_mb": peak_rss_mb(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flows", type=int, default=DEFAULT_FLOWS)
    parser.add_argument("--record", action="store_true",
                        help="append the measured footprint to "
                             "BENCH_perf.json")
    args = parser.parse_args(argv)

    print(f"DISCO (b={DISCO_B}) over {args.flows:,} flows, "
          f"{SEGMENT_FLOWS:,}-flow segments, Counter Pools store")
    r = run(args.flows)

    bpf = r["store_bytes"] / r["flows"]
    rel = abs(r["est_total"] - r["true_total"]) / r["true_total"]
    print(f"replayed {r['packets']:,} packets "
          f"in {r['segments']} segments, {r['elapsed']:.1f}s")
    print(f"  pools store   : {r['store_bytes'] / 1e6:8.1f} MB "
          f"({bpf:.2f} bytes/flow, {r['promotions']} pool promotions)")
    print(f"  dense columns : {r['dense_bytes'] / 1e6:8.1f} MB "
          f"(8.00 bytes/flow)")
    # What the one-shot dense pipeline would additionally keep live:
    # a list-of-lists trace (~56 B/int packet entry + ~120 B/flow list)
    # and the key->row index dict (~100 B/entry).
    python_side = r["packets"] * 56 + r["flows"] * 220
    print(f"  one-shot dense pipeline (trace lists + index dicts) would "
          f"need ~{python_side / 1e9:.1f} GB resident")
    print(f"  peak RSS      : {r['peak_rss_mb']:8.1f} MB")
    print(f"  total-volume estimate off by {rel * 100:.3f}% "
          f"(sketch error; the pools store itself is lossless)")

    if args.record:
        import importlib.util

        gate_path = Path(__file__).resolve().parents[1] / "benchmarks" \
            / "perf_gate.py"
        spec = importlib.util.spec_from_file_location("perf_gate", gate_path)
        gate = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gate)
        gate.append_history({
            "perf_mem10m_flows": float(r["flows"]),
            "perf_mem10m_pools_bpf": bpf,
            "perf_mem10m_pools_mb": r["store_bytes"] / 1e6,
            "perf_mem10m_dense_mb": r["dense_bytes"] / 1e6,
            "perf_mem10m_peak_rss_mb": r["peak_rss_mb"],
            "perf_mem10m_seconds": r["elapsed"],
        })
        print(f"history appended to {gate.HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
