#!/usr/bin/env python3
"""Usage-based billing with error bars, straight off DISCO counters.

Maps flows to customers, replays a mixed workload, and produces
per-customer bills with 95% confidence bands — the "subpopulation"
query the paper's introduction motivates.  Also demonstrates on-line
heavy-hitter detection and epoch-to-epoch change reports.

Run:  python examples/usage_billing.py
"""

import random

from repro import DiscoSketch, choose_b
from repro.apps import EpochManager, HeavyHitterDetector, UsageAccountant, epoch_delta
from repro.harness import render_table

CUSTOMERS = ("acme", "globex", "initech")
rand = random.Random(2024)

# Build a workload: each customer owns flows "<customer>/<i>"; acme runs a
# bulk transfer mid-way through.
packets = []
for customer, flows, pkts in (("acme", 8, 300), ("globex", 12, 200),
                              ("initech", 4, 150)):
    for i in range(flows):
        for _ in range(pkts):
            packets.append((f"{customer}/{i}", rand.randint(40, 1500)))
rand.shuffle(packets)
# The bulk transfer starts mid-stream (so the epoch diff below shows it).
packets += [("acme/bulk", 1500)] * 4000

truth = {}
for flow, length in packets:
    truth[flow] = truth.get(flow, 0) + length

b = choose_b(counter_bits=12, max_flow_length=max(truth.values()), slack=1.5)
sketch = DiscoSketch(b=b, mode="volume", rng=1)

# Heavy-hitter detector rides along while we ingest.
detector = HeavyHitterDetector(sketch, threshold=1_000_000, policy="confident")
for flow, length in packets:
    detection = detector.observe(flow, length)
    if detection:
        print(f"[online] heavy hitter: {detection.flow} crossed 1 MB at "
              f"packet {detection.packet_index} "
              f"(estimate {detection.estimate / 1e6:.2f} MB)")
print()

# Bills with 95% bands.
accountant = UsageAccountant(sketch, account_of=lambda f: f.split("/")[0])
bills = accountant.bill_all(level=0.95)
true_usage = {c: sum(v for f, v in truth.items() if f.startswith(c))
              for c in CUSTOMERS}
print("Customer bills (95% confidence)")
print(render_table(
    ["customer", "billed MB", "band MB", "true MB", "flows", "rel band"],
    [
        [bill.account, bill.usage / 1e6,
         f"{bill.low / 1e6:.2f}..{bill.high / 1e6:.2f}",
         true_usage[bill.account] / 1e6, bill.flows,
         bill.relative_half_width]
        for bill in bills
    ],
))
total = accountant.total_traffic()
print(f"\nLink total: {total.usage / 1e6:.2f} MB "
      f"(true {sum(truth.values()) / 1e6:.2f} MB)")

# Epoch rotation: split the same stream into two halves and diff them.
print()
print("Epoch change report (two halves of the stream)")
epochs = EpochManager(lambda: DiscoSketch(b=b, mode="volume", rng=3),
                      epoch_packets=len(packets) // 2)
for flow, length in packets:
    epochs.observe(flow, length)
if len(epochs.records) >= 2:
    first, second = epochs.records[0], epochs.records[1]
    deltas = epoch_delta(first, second, min_change=200_000)
    movers = sorted(deltas.items(), key=lambda kv: abs(kv[1]), reverse=True)[:5]
    print(render_table(
        ["flow", "change MB"],
        [[flow, change / 1e6] for flow, change in movers],
    ))
