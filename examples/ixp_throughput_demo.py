#!/usr/bin/env python3
"""DISCO on the IXP2850 network-processor model (Section VI).

Builds the 96 Kb Log&Exp table, runs the table-driven DISCO data path over
the 80-20 traffic pattern on 1/2/4 MicroEngines with and without burst
aggregation, and prints the Table V comparison: throughput scaling, the
error column, and the memory/lookup accounting.

Run:  python examples/ixp_throughput_demo.py [num_packets]
"""

import sys

from repro.harness import render_table
from repro.ixp import LogExpTable, run_one

NUM_PACKETS = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000

table = LogExpTable(1.002)
print("Log & Exp lookup table")
print(f"  entries           : {table.entries}")
print(f"  word layout       : {table.power_bits}-bit power | "
      f"{table.log_bits}-bit log")
print(f"  memory            : {table.memory_bits()} bits "
      f"(= {table.memory_bits() // 1024} Kb, paper: 96 Kb)")
print(f"  power frac bits   : {table.power_frac_bits}")
print()

rows = []
for burst_max, label in ((1, "1"), (8, "1-8")):
    for num_mes in (1, 2, 4):
        result = run_one(num_mes=num_mes, burst_max=burst_max,
                         num_packets=NUM_PACKETS, rng=0)
        rows.append([
            label, num_mes, result.throughput_gbps,
            result.average_relative_error,
            result.packets, result.counter_updates,
            result.table_lookups,
        ])

print(f"Table V reproduction ({NUM_PACKETS} packets, 2560 flows, 80-20)")
print(render_table(
    ["burst", "# ME", "Gbps", "avg rel err", "packets", "updates", "lookups"],
    rows,
))

print()
print("Paper's rows: 11.1 / 22.0 / 39.0 Gbps (burst 1) and "
      "28.6 / 55.3 / 104.8 Gbps (burst 1-8);")
print("burst aggregation amortises the SRAM read-modify-write across the")
print("burst, which both raises throughput ~2.5x and halves the error")
print("(bigger per-update amounts have lower coefficient of variation).")
