# Convenience targets for the DISCO reproduction.

PYTHON ?= python

.PHONY: install lint test test-nonative test-faults serve-smoke bench bench-gate bench-gate-quick bench-mem bench-shootout bench-shootout-quick scenarios scenarios-quick report examples all

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# Static checks.  ruff (configured in pyproject.toml) when available;
# otherwise fall back to a byte-compile pass so the target still
# catches syntax errors on minimal environments.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

test:
	$(PYTHON) -m pytest tests/ -q

# Same suite with the compiled native backend masked: proves every
# engine="native" / engine="auto" caller degrades cleanly to the vector
# path on machines without Numba or a C compiler.
test-nonative:
	REPRO_DISABLE_NATIVE=1 $(PYTHON) -m pytest tests/ -q

# Fault-injection audit: the seeded fault-schedule suite and the
# exactly-once telemetry regression, then the CLI invariant audit
# (bit-identity, shm hygiene) over its built-in fault plans.
test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest tests/harness/test_faults.py tests/test_obs.py -q
	PYTHONPATH=src $(PYTHON) -m repro faults

# End-to-end daemon smoke: boot `repro serve` as a subprocess on an
# ephemeral port, verify live queries against an offline stream() of the
# same trace, then crash it with an injected fault and prove --resume
# answers bit-identically.  Finishes in seconds.
serve-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/serve_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

bench-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_gate.py

bench-gate-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_gate.py --quick

# Measured counter-store footprint (dense vs pools vs Morris bytes per
# flow at the one-million-flow gate scale), then the headline
# ten-million-flow Counter Pools run; both append to BENCH_perf.json.
bench-mem:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_memory_stores.py
	PYTHONPATH=src $(PYTHON) examples/ten_million_flows.py --flows 10000000 --record

# Beyond-the-paper comparator shootout (DISCO / SAC / ANLS / SD / ICE /
# AEE): the full run regenerates docs/shootout.md from measurements;
# the quick run (<60s) prints the table without touching the doc.
bench-shootout:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_shootout.py

bench-shootout-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_shootout.py --quick

# Scheme × scenario × memory-budget matrix (repro.harness.scenarios):
# both runs regenerate docs/scenarios.md; the quick slice (<60s) skips
# the native engine and the largest budget.
scenarios:
	PYTHONPATH=src $(PYTHON) -m repro scenarios

scenarios-quick:
	PYTHONPATH=src $(PYTHON) -m repro scenarios --quick

report:
	$(PYTHON) -m repro report --out report.md

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples ran"

all: lint test test-nonative test-faults serve-smoke bench bench-gate-quick bench-shootout-quick scenarios-quick
