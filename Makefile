# Convenience targets for the DISCO reproduction.

PYTHON ?= python

.PHONY: install test test-faults bench bench-gate bench-gate-quick report examples all

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

# Fault-injection audit: the seeded fault-schedule suite and the
# exactly-once telemetry regression, then the CLI invariant audit
# (bit-identity, shm hygiene) over its built-in fault plans.
test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest tests/harness/test_faults.py tests/test_obs.py -q
	PYTHONPATH=src $(PYTHON) -m repro faults

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

bench-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_gate.py

bench-gate-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_gate.py --quick

report:
	$(PYTHON) -m repro report --out report.md

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples ran"

all: test test-faults bench
