# Convenience targets for the DISCO reproduction.

PYTHON ?= python

.PHONY: install test bench bench-gate bench-gate-quick report examples all

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

bench-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_gate.py

bench-gate-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_gate.py --quick

report:
	$(PYTHON) -m repro report --out report.md

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples ran"

all: test bench
